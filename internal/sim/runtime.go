package sim

import (
	"fmt"
	"math/rand"

	"charmtrace/internal/trace"
)

// Config parameterizes the simulated machine and the tracing framework.
type Config struct {
	NumPE int
	Seed  int64
	// NetLatency is the base delivery latency between distinct PEs.
	NetLatency Time
	// LocalLatency is the base delivery latency within a PE.
	LocalLatency Time
	// NetJitter adds a uniform random [0, NetJitter] to every delivery,
	// making execution order genuinely non-deterministic across seeds.
	NetJitter Time
	// TraceReductions enables the Section 5 tracing additions: the local
	// reduction events on each process (contribution deliveries to the
	// per-PE CkReductionMgr and the synthetic internal dependencies chaining
	// them) are recorded. Without it, only the explicit inter-processor
	// reduction messages appear in the trace, as in stock Charm++.
	TraceReductions bool
}

// DefaultConfig returns a small-cluster configuration with reduction
// tracing enabled.
func DefaultConfig(numPE int) Config {
	return Config{
		NumPE:           numPE,
		Seed:            1,
		NetLatency:      1000,
		LocalLatency:    100,
		NetJitter:       200,
		TraceReductions: true,
	}
}

// Runtime is one simulated Charm++ execution. Build arrays and reductions,
// seed work with Spawn, then call Run once to obtain the trace.
type Runtime struct {
	cfg    Config
	eng    *engine
	rng    *rand.Rand
	tb     *trace.Builder
	arrays []*Array
	mgr    *Array // per-PE CkReductionMgr runtime chares
	reds   []*Reduction
	qd     []*envelope // pending quiescence-detection callbacks
	ran    bool

	peLastEnd []Time
	peEverRan []bool
}

// New creates a runtime from a config.
func New(cfg Config) *Runtime {
	if cfg.NumPE <= 0 {
		panic("sim: NumPE must be positive")
	}
	rt := &Runtime{
		cfg:       cfg,
		eng:       newEngine(cfg.NumPE),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		tb:        trace.NewBuilder(cfg.NumPE),
		peLastEnd: make([]Time, cfg.NumPE),
		peEverRan: make([]bool, cfg.NumPE),
	}
	rt.mgr = rt.newArray("CkReductionMgr", cfg.NumPE, true, func(i int) int { return i }, nil)
	// Without the §5 additions the manager's local reduction blocks are
	// invisible to tracing; handlers force-trace the blocks that touch
	// explicit inter-processor reduction messages.
	rt.mgr.register("contribute", !cfg.TraceReductions, mgrHandle)
	rt.mgr.register("reduceUp", !cfg.TraceReductions, mgrHandle)
	return rt
}

// Builder exposes the underlying trace builder for advanced scenarios
// (tests that need hand-placed records alongside simulation).
func (rt *Runtime) Builder() *trace.Builder { return rt.tb }

// EntryFn is an entry method body. The context is only valid during the
// call.
type EntryFn func(ctx *Ctx, msg Message)

// Message is a delivered message.
type Message struct {
	// Data is the payload given to Send/Broadcast, or a *ReduceResult for
	// reduction callbacks.
	Data any
	// From identifies the sending chare, or NoChare for Spawn seeds.
	From trace.ChareID
}

// ReduceResult is delivered to reduction callbacks.
type ReduceResult struct {
	Value float64
	Gen   int
}

// entryDef is one registered entry method.
type entryDef struct {
	name string
	fn   EntryFn
	tid  trace.EntryID
	// untraced entries produce no block records unless the handler forces
	// tracing (used by the reduction manager when Section 5 tracing is off).
	untraced bool
}

// element is one chare (an element of an Array).
type element struct {
	arr   *Array
	idx   int
	pe    int // current processor (changes under migration)
	home  int // initial placement
	chare trace.ChareID
	state any
}

// Array is an indexed collection of chares.
type Array struct {
	rt      *Runtime
	id      trace.ArrayID
	name    string
	runtime bool
	elems   []*element
	entries []entryDef
}

// NewArray creates an application chare array of n elements. Placement maps
// element index to PE; pass nil for the default block mapping. The state
// factory (may be nil) builds per-element state.
func (rt *Runtime) NewArray(name string, n int, placement func(i int) int, state func(i int) any) *Array {
	return rt.newArray(name, n, false, placement, state)
}

func (rt *Runtime) newArray(name string, n int, runtimeChares bool, placement func(i int) int, state func(i int) any) *Array {
	if rt.ran {
		panic("sim: NewArray after Run")
	}
	if placement == nil {
		placement = func(i int) int { return i * rt.cfg.NumPE / n }
	}
	arr := &Array{rt: rt, id: trace.ArrayID(len(rt.arrays)), name: name, runtime: runtimeChares}
	for i := 0; i < n; i++ {
		p := placement(i)
		if p < 0 || p >= rt.cfg.NumPE {
			panic(fmt.Sprintf("sim: placement of %s[%d] on PE %d out of range", name, i, p))
		}
		var cid trace.ChareID
		label := fmt.Sprintf("%s[%d]", name, i)
		if runtimeChares {
			cid = rt.tb.AddRuntimeChare(label, trace.PE(p))
		} else {
			cid = rt.tb.AddChare(label, arr.id, i, trace.PE(p))
		}
		e := &element{arr: arr, idx: i, pe: p, home: p, chare: cid}
		if state != nil {
			e.state = state(i)
		}
		arr.elems = append(arr.elems, e)
	}
	rt.arrays = append(rt.arrays, arr)
	return arr
}

// EntryRef names a registered entry method of an array.
type EntryRef struct {
	arr *Array
	idx int
}

// Register adds an entry method and returns its reference.
func (a *Array) Register(name string, fn EntryFn) EntryRef {
	return a.register(name, false, fn)
}

// RegisterSDAG adds a Structured-Dagger generated serial entry method with
// its parsing-order serial number and whether it directly follows a `when`
// clause (§2.1). The logical-structure algorithm uses these numbers to
// infer happened-before relationships.
func (a *Array) RegisterSDAG(name string, serial int, afterWhen bool, fn EntryFn) EntryRef {
	ref := EntryRef{a, len(a.entries)}
	tid := a.rt.tb.AddSDAGEntry(fmt.Sprintf("%s::%s", a.name, name), serial, afterWhen)
	a.entries = append(a.entries, entryDef{name: name, fn: fn, tid: tid})
	return ref
}

// registerDeferred appends an entry whose trace metadata (name, SDAG
// serial) is filled later, before Run; used by the SDAG builder.
func (a *Array) registerDeferred(fn EntryFn) EntryRef {
	ref := EntryRef{a, len(a.entries)}
	a.entries = append(a.entries, entryDef{fn: fn, tid: -1})
	return ref
}

func (a *Array) register(name string, untraced bool, fn EntryFn) EntryRef {
	ref := EntryRef{a, len(a.entries)}
	tid := a.rt.tb.AddEntry(fmt.Sprintf("%s::%s", a.name, name))
	a.entries = append(a.entries, entryDef{name: name, fn: fn, tid: tid, untraced: untraced})
	return ref
}

// ChareRef names one element of an array.
type ChareRef struct {
	arr  *Array
	elem int
}

// At returns a reference to element i.
func (a *Array) At(i int) ChareRef { return ChareRef{a, i} }

// Len returns the number of elements.
func (a *Array) Len() int { return len(a.elems) }

// ChareIDOf returns the trace chare ID of element i.
func (a *Array) ChareIDOf(i int) trace.ChareID { return a.elems[i].chare }

// PEOf returns the processor element i lives on.
func (a *Array) PEOf(i int) int { return a.elems[i].pe }

// envelope is an in-flight message.
type envelope struct {
	msg    trace.MsgID
	traced bool // the send was recorded; record the matching receive
	to     *element
	entry  int
	data   any
	from   trace.ChareID
	spawn  bool  // seed execution: no receive event at all
	prio   int32 // scheduler priority; lower runs first (0 = default)
}

// Spawn seeds an execution of an entry method at virtual time 0 (plus
// scheduling), with no triggering message recorded — the analogue of a
// mainchare kicking off the program. Only valid before Run.
func (rt *Runtime) Spawn(to ChareRef, entry EntryRef, data any) {
	if rt.ran {
		panic("sim: Spawn after Run")
	}
	if to.arr != entry.arr {
		panic("sim: Spawn entry belongs to a different array")
	}
	rt.eng.deliver(0, to.arr.elems[to.elem].pe, &envelope{
		to: to.arr.elems[to.elem], entry: entry.idx, data: data,
		from: trace.NoChare, spawn: true,
	})
}

// OnQuiescence registers a quiescence-detection callback (Charm++'s
// CkStartQD): when the system quiesces — no messages in flight, every
// processor's queue empty — the entry is invoked on the target chare with
// the given payload. Callbacks fire one per quiescence, in registration
// order: work created by one callback drains before the next fires. The
// delivery is a fresh source block; like real Charm++ completion
// detection, the QD tree's bookkeeping leaves no recorded dependency (the
// Figure 24 situation).
func (rt *Runtime) OnQuiescence(to ChareRef, entry EntryRef, data any) {
	if rt.ran {
		panic("sim: OnQuiescence after Run")
	}
	if to.arr != entry.arr {
		panic("sim: OnQuiescence entry belongs to a different array")
	}
	rt.qd = append(rt.qd, &envelope{
		to: to.arr.elems[to.elem], entry: entry.idx, data: data,
		from: trace.NoChare, spawn: true,
	})
}

// Run drains the simulation and returns the finished, validated trace.
func (rt *Runtime) Run() (*trace.Trace, error) {
	if rt.ran {
		panic("sim: Run called twice")
	}
	rt.ran = true
	for {
		rt.eng.run(rt.exec)
		if len(rt.qd) == 0 {
			break
		}
		// Quiescence reached: schedule the next registered callback at the
		// latest completion time plus scheduling latency.
		env := rt.qd[0]
		rt.qd = rt.qd[1:]
		var at Time
		for _, end := range rt.peLastEnd {
			if end > at {
				at = end
			}
		}
		rt.eng.deliver(at+rt.latency(env.to.pe, env.to.pe), env.to.pe, env)
	}
	return rt.tb.Finish()
}

// MustRun is Run that panics on error.
func (rt *Runtime) MustRun() *trace.Trace {
	t, err := rt.Run()
	if err != nil {
		panic(err)
	}
	return t
}

// bufEvent is a buffered trace event; blocks are recorded after the handler
// returns so an untraced entry can still force tracing (reduction manager).
type bufEvent struct {
	kind trace.EventKind
	msg  trace.MsgID
	at   Time
}

// Ctx is the execution context of one entry-method invocation.
type Ctx struct {
	rt        *Runtime
	elem      *element
	cursor    Time
	begin     Time
	events    []bufEvent
	sent      []*envelope
	force     bool // record the block even if the entry is untraced
	migrate   bool
	migrateTo int
}

// Now returns the current virtual time within the block.
func (c *Ctx) Now() Time { return c.cursor }

// Index returns the element's index within its array.
func (c *Ctx) Index() int { return c.elem.idx }

// PE returns the processor executing the block.
func (c *Ctx) PE() int { return c.elem.pe }

// State returns the element's state (nil if no factory was given).
func (c *Ctx) State() any { return c.elem.state }

// Chare returns the element's trace chare ID.
func (c *Ctx) Chare() trace.ChareID { return c.elem.chare }

// Compute advances virtual time by d, modelling computation.
func (c *Ctx) Compute(d Time) {
	if d < 0 {
		panic("sim: negative compute time")
	}
	c.cursor += d
}

// Migrate moves this chare to another processor once the current entry
// method completes (Charm++ migration happens between entry method
// executions). Messages already in flight are rerouted on dispatch:
// delivery targets the element, not the processor. The logical structure
// is keyed by chares, so a recovered structure is invariant to migration
// even though the physical timeline changes.
func (c *Ctx) Migrate(toPE int) {
	if toPE < 0 || toPE >= c.rt.cfg.NumPE {
		panic(fmt.Sprintf("sim: Migrate to PE %d out of range", toPE))
	}
	c.migrateTo = toPE
	c.migrate = true
}

// Send invokes an entry method on another chare: the marshalled parameters
// become a message routed to the destination chare's processor.
func (c *Ctx) Send(to ChareRef, entry EntryRef, data any) {
	c.send(to, entry, data, true, 0, 0)
}

// SendPrio is Send with a Charm++-style scheduler priority: among the
// messages queued on a processor, lower priority values are dequeued first
// (FIFO within a priority). Priorities reorder execution without changing
// dependencies, one of the non-deterministic factors the §3.2.1 reordering
// is designed to see through.
func (c *Ctx) SendPrio(to ChareRef, entry EntryRef, data any, prio int32) {
	c.send(to, entry, data, true, prio, 0)
}

// SendUntraced delivers like Send but records neither the send nor the
// receive — a control dependency invisible to the tracing framework, like
// the PDES completion-detector call of Section 7.1.
func (c *Ctx) SendUntraced(to ChareRef, entry EntryRef, data any) {
	c.send(to, entry, data, false, 0, 0)
}

// SendDelayed is Send with extra delivery delay on top of the drawn network
// latency — a straggler message (deep network buffering, a slow NIC) that
// can arrive rounds after it was sent. The send event is still recorded at
// the current time; only the delivery moves, so recovered structure must be
// invariant to the delay.
func (c *Ctx) SendDelayed(to ChareRef, entry EntryRef, data any, extra Time) {
	if extra < 0 {
		panic("sim: negative send delay")
	}
	c.send(to, entry, data, true, 0, extra)
}

func (c *Ctx) send(to ChareRef, entry EntryRef, data any, traced bool, prio int32, extra Time) {
	if to.arr != entry.arr {
		panic("sim: Send entry belongs to a different array")
	}
	dst := to.arr.elems[to.elem]
	m := c.rt.tb.NewMsg()
	if traced {
		c.events = append(c.events, bufEvent{trace.Send, m, c.cursor})
	}
	env := &envelope{
		msg: m, traced: traced, to: dst, entry: entry.idx, data: data,
		from: c.elem.chare, prio: prio,
	}
	c.sent = append(c.sent, env)
	c.rt.eng.deliver(c.cursor+c.rt.latency(c.elem.pe, dst.pe)+extra, dst.pe, env)
}

// Broadcast invokes an entry method on every element of an array through a
// single call: one send event, one receive per element.
func (c *Ctx) Broadcast(entry EntryRef, data any) {
	arr := entry.arr
	m := c.rt.tb.NewMsg()
	c.events = append(c.events, bufEvent{trace.Send, m, c.cursor})
	for _, dst := range arr.elems {
		env := &envelope{
			msg: m, traced: true, to: dst, entry: entry.idx, data: data, from: c.elem.chare,
		}
		c.sent = append(c.sent, env)
		c.rt.eng.deliver(c.cursor+c.rt.latency(c.elem.pe, dst.pe), dst.pe, env)
	}
}

// latency draws the delivery latency between two PEs.
func (rt *Runtime) latency(from, to int) Time {
	base := rt.cfg.NetLatency
	if from == to {
		base = rt.cfg.LocalLatency
	}
	if rt.cfg.NetJitter > 0 {
		base += Time(rt.rng.Int63n(int64(rt.cfg.NetJitter) + 1))
	}
	if base < 1 {
		base = 1
	}
	return base
}

// exec dispatches one envelope: it opens the serial block, runs the handler
// with a buffering context, and records the block if its entry is traced.
func (rt *Runtime) exec(peID int, start Time, env *envelope) Time {
	elem := env.to
	if elem.pe != peID {
		// The chare migrated while the message was in flight: the runtime
		// forwards it to the chare's current processor.
		rt.eng.deliver(start+rt.latency(peID, elem.pe), elem.pe, env)
		return start
	}
	entry := &elem.arr.entries[env.entry]
	ctx := &Ctx{rt: rt, elem: elem, cursor: start, begin: start}
	if env.traced && !env.spawn {
		ctx.events = append(ctx.events, bufEvent{trace.Recv, env.msg, start})
	}
	entry.fn(ctx, Message{Data: env.data, From: env.from})
	end := ctx.cursor
	if end < start {
		end = start
	}
	// Scheduler idle is recorded regardless of entry tracing: the tracing
	// framework logs idle independently of which entries are instrumented.
	if rt.peEverRan[peID] && start > rt.peLastEnd[peID] {
		rt.tb.Idle(trace.PE(peID), rt.peLastEnd[peID], start)
	}
	if entry.untraced && !ctx.force {
		// The block is invisible to the tracing framework; its sends must
		// not leave matching receives dangling.
		for _, env := range ctx.sent {
			env.traced = false
		}
	} else {
		rt.tb.BeginBlock(elem.chare, trace.PE(peID), entry.tid, start)
		for _, be := range ctx.events {
			switch be.kind {
			case trace.Send:
				rt.tb.Send(elem.chare, be.msg, be.at)
			case trace.Recv:
				rt.tb.Recv(elem.chare, be.msg, be.at)
			}
		}
		rt.tb.EndBlock(elem.chare, end)
	}
	rt.peEverRan[peID] = true
	rt.peLastEnd[peID] = end
	if ctx.migrate {
		elem.pe = ctx.migrateTo
	}
	return end
}
