package main

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"charmtrace/internal/query"
)

// instant returns a retrier that never sleeps and records each computed
// delay, with a fixed mid-range jitter draw.
func instant(retries int) (*retrier, *[]time.Duration) {
	slept := &[]time.Duration{}
	r := newRetrier(retries)
	r.sleep = func(d time.Duration) { *slept = append(*slept, d) }
	r.jitter = func() float64 { return 0.5 }
	return r, slept
}

func TestRetryEventualSuccess(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
		case 2:
			http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
		default:
			w.Write([]byte(`{"select":"structure","total_rows":1,"rows":[{"id":0}]}`))
		}
	}))
	defer srv.Close()

	rt, slept := instant(3)
	p, err := postPage(srv.URL, query.Spec{Select: "structure"}, rt)
	if err != nil {
		t.Fatalf("postPage: %v", err)
	}
	if p.TotalRows != 1 || len(p.Rows) != 1 {
		t.Fatalf("page = %+v", p)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
	if len(*slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(*slept))
	}
	// First backoff honored the server's Retry-After: 0 verbatim.
	if (*slept)[0] != 0 {
		t.Fatalf("first delay = %v, want 0 (Retry-After honored)", (*slept)[0])
	}
	// Second had no hint: exponential base doubled once, with jitter in
	// [d/2, d) for d = 2*base.
	d := (*slept)[1]
	if d < retryBase || d >= 2*retryBase {
		t.Fatalf("second delay = %v, want in [%v, %v)", d, retryBase, 2*retryBase)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "0")
		http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
	}))
	defer srv.Close()

	rt, _ := instant(2)
	_, err := postPage(srv.URL, query.Spec{Select: "structure"}, rt)
	if err == nil {
		t.Fatal("want error after budget exhausted")
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (1 try + 2 retries)", got)
	}
}

func TestRetryNonRetryableIsFinal(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"unknown trace digest"}`, http.StatusNotFound)
	}))
	defer srv.Close()

	rt, _ := instant(3)
	_, err := postPage(srv.URL, query.Spec{Select: "structure"}, rt)
	if err == nil {
		t.Fatal("want error")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (404 is final)", got)
	}
}

// TestRetryDelayHTTPDate: RFC 9110's date form of Retry-After — what
// proxies rewrite delta-seconds into — is honored, with past dates meaning
// "now" and far-future dates clamped like any other hint.
func TestRetryDelayHTTPDate(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	r := newRetrier(3)
	r.now = func() time.Time { return now }
	r.jitter = func() float64 { return 0 }

	// A date 3 seconds out waits those 3 seconds.
	if got := r.delay(0, now.Add(3*time.Second).UTC().Format(http.TimeFormat)); got != 3*time.Second {
		t.Fatalf("date +3s → %v, want 3s", got)
	}
	// A date in the past means the window already opened: zero wait, never
	// a negative duration fed to sleep.
	if got := r.delay(0, now.Add(-time.Minute).UTC().Format(http.TimeFormat)); got != 0 {
		t.Fatalf("past date → %v, want 0", got)
	}
	// A date far in the future is clamped so a confused server cannot park
	// the client.
	if got := r.delay(0, now.Add(time.Hour).UTC().Format(http.TimeFormat)); got != retryMax {
		t.Fatalf("date +1h → %v, want clamp %v", got, retryMax)
	}
	// The obsolete RFC 850 date form http.ParseTime also accepts.
	if got := r.delay(0, now.Add(2*time.Second).UTC().Format("Monday, 02-Jan-06 15:04:05 GMT")); got != 2*time.Second {
		t.Fatalf("RFC 850 date +2s → %v, want 2s", got)
	}
	// A garbage date still falls back to the exponential curve (jitter 0 →
	// exactly base/2 on attempt 0).
	if got := r.delay(0, "Wed, 99 Foo 2026 25:61:61 GMT"); got != retryBase/2 {
		t.Fatalf("garbage date → %v, want backoff %v", got, retryBase/2)
	}
}

func TestRetryDelayPolicy(t *testing.T) {
	r := newRetrier(3)
	r.jitter = func() float64 { return 0 } // delay = d/2 exactly
	// Retry-After wins and is clamped to max.
	if got := r.delay(0, "2"); got != 2*time.Second {
		t.Fatalf("Retry-After 2 → %v, want 2s", got)
	}
	if got := r.delay(0, "3600"); got != retryMax {
		t.Fatalf("Retry-After 3600 → %v, want clamp %v", got, retryMax)
	}
	// Garbage hints fall back to the exponential curve.
	prev := time.Duration(0)
	for attempt := 0; attempt < 10; attempt++ {
		d := r.delay(attempt, "soon")
		if d < prev {
			t.Fatalf("attempt %d: delay %v shrank from %v", attempt, d, prev)
		}
		if d > retryMax {
			t.Fatalf("attempt %d: delay %v exceeds cap", attempt, d)
		}
		prev = d
	}
	if prev != retryMax/2 {
		t.Fatalf("late-attempt delay = %v, want capped %v (zero jitter)", prev, retryMax/2)
	}
}
