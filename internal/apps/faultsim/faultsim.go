// Package faultsim is a failure-and-restart scenario: ring-coupled chares
// checkpoint through a reduction every iteration, one chare fail-stops just
// before contributing its checkpoint, and the resulting stall drains the
// whole machine. A restart manager driven by quiescence detection (the same
// runtime-internal trigger as the PDES completion detector) broadcasts a
// rollback, the victim replays its lost work, and the run continues to
// completion. The recovered structure gains rollback/replay phases between
// the stalled checkpoint and the rest of the run.
package faultsim

import (
	"charmtrace/internal/sim"
	"charmtrace/internal/trace"
)

// Config parameterizes a run.
type Config struct {
	// Chares is the number of ring chares.
	Chares int
	// NumPE is the processor count.
	NumPE int
	// Iterations is the number of ring iterations.
	Iterations int
	// FailAt is the iteration during which the victim fail-stops; set it at
	// or past Iterations for a failure-free run.
	FailAt int
	// Victim is the index of the failing chare.
	Victim int
	// Compute is the per-iteration compute time.
	Compute sim.Time
	// Seed feeds the network jitter.
	Seed int64
	// TraceReductions toggles the §5 tracing additions.
	TraceReductions bool
}

// DefaultConfig is an 8-chare run on 4 processors failing in the second
// iteration.
func DefaultConfig() Config {
	return Config{
		Chares: 8, NumPE: 4, Iterations: 4, FailAt: 1, Victim: 3,
		Compute: 300, Seed: 1, TraceReductions: true,
	}
}

// state is per-chare simulation state.
type state struct {
	iter   int
	failed bool
}

// Trace runs the scenario and returns its event trace.
func Trace(cfg Config) (*trace.Trace, error) {
	n := cfg.Chares
	simCfg := sim.DefaultConfig(cfg.NumPE)
	simCfg.Seed = cfg.Seed
	simCfg.TraceReductions = cfg.TraceReductions
	rt := sim.New(simCfg)

	arr := rt.NewArray("ring", n, nil, func(i int) any { return &state{} })
	// The restart manager models the runtime's fault-tolerance service: one
	// singleton chare whose trigger is quiescence detection.
	mgr := rt.NewArray("restartmgr", 1, func(i int) int { return 0 }, nil)

	var token, resume, rollback sim.EntryRef
	var red *sim.Reduction

	// the SDAG iteration body passing the ring token.
	begin := arr.RegisterSDAG("serial_0", 0, false, func(ctx *sim.Ctx, m sim.Message) {
		ctx.Compute(20)
		ctx.Send(arr.At((ctx.Index()+1)%n), token, nil)
	})
	// the when-clause serial receiving the token: compute, then contribute
	// the checkpoint — unless this is the victim's failure point, where the
	// chare fail-stops (its checkpoint contribution is simply never sent).
	token = arr.RegisterSDAG("token", 2, true, func(ctx *sim.Ctx, m sim.Message) {
		st := ctx.State().(*state)
		if st.iter == cfg.FailAt && ctx.Index() == cfg.Victim && !st.failed {
			st.failed = true
			return
		}
		ctx.Compute(cfg.Compute)
		ctx.Contribute(red, float64(st.iter))
	})
	// the checkpoint-complete broadcast, starting the next iteration.
	resume = arr.RegisterSDAG("resume", 4, true, func(ctx *sim.Ctx, m sim.Message) {
		st := ctx.State().(*state)
		st.iter++
		if st.iter >= cfg.Iterations {
			return
		}
		ctx.Compute(20)
		ctx.Send(arr.At((ctx.Index()+1)%n), token, nil)
	})
	// rollback: every chare verifies its checkpoint; the victim replays the
	// work it lost and finally contributes, releasing the stalled reduction.
	rollback = arr.Register("rollback", func(ctx *sim.Ctx, m sim.Message) {
		st := ctx.State().(*state)
		if st.failed {
			st.failed = false
			ctx.Compute(cfg.Compute)
			ctx.Contribute(red, float64(st.iter))
			return
		}
		ctx.Compute(10)
	})
	restart := mgr.Register("restart", func(ctx *sim.Ctx, m sim.Message) {
		ctx.Compute(50)
		ctx.Broadcast(rollback, nil)
	})
	red = rt.NewReduction(arr, sim.Min, sim.BroadcastCallback(resume))

	for i := 0; i < n; i++ {
		rt.Spawn(arr.At(i), begin, nil)
	}
	// The failure stalls the checkpoint reduction until the machine drains;
	// quiescence detection is what notices and triggers the restart.
	rt.OnQuiescence(mgr.At(0), restart, nil)
	return rt.Run()
}

// MustTrace is Trace that panics on error.
func MustTrace(cfg Config) *trace.Trace {
	t, err := Trace(cfg)
	if err != nil {
		panic(err)
	}
	return t
}
