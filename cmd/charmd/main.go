// Command charmd is the long-running trace-analysis service: upload Charm++
// or message-passing traces once, then query recovered logical structure,
// per-chare metrics and structure diffs interactively. Every analysis
// response is served through a content-addressed result cache (memory LRU +
// on-disk store + request coalescing), so repeated queries never re-run the
// extraction pipeline and results survive restarts.
//
// Usage:
//
//	charmd -addr :8080 -data-dir .charmd-cache
//
//	curl -sS --data-binary @jacobi.trace localhost:8080/v1/traces
//	curl -sS localhost:8080/v1/traces/<digest>/structure
//	curl -sS localhost:8080/v1/traces/<digest>/metrics
//	curl -sS 'localhost:8080/v1/structdiff?a=<d1>&b=<d2>'
//	curl -sS localhost:8080/debug/stats
//
// SIGINT/SIGTERM trigger a graceful shutdown that drains in-flight
// requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"charmtrace/internal/cli"
	"charmtrace/internal/cluster"
	"charmtrace/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataDir := flag.String("data-dir", ".charmd-cache", "persistent state: uploaded traces and the on-disk result cache ('' = memory only)")
	memEntries := flag.Int("mem-entries", 0, "in-memory result-cache entries (0 = default, negative = disable)")
	maxUpload := flag.Int64("max-upload", 256<<20, "maximum trace upload size in bytes")
	reqTimeout := flag.Duration("request-timeout", 60*time.Second, "per-request analysis timeout")
	parallelism := flag.Int("parallelism", 0, "extraction worker count (0 = all cores; responses are identical at any value)")
	maxExtractions := flag.Int("max-extractions", 0, "concurrent extraction slots before load shedding (0 = GOMAXPROCS, negative = unlimited)")
	queueWait := flag.Duration("queue-wait", time.Second, "how long a request queues for an extraction slot before a 429 + Retry-After")
	detachedTimeout := flag.Duration("detached-timeout", 0, "hard cap on an extraction every requester abandoned (0 = 5m, negative = uncapped)")
	maxResultBytes := flag.Int64("max-result-bytes", 0, "on-disk result cache bound in bytes; least-recently-modified entries are GCed past it (0 = unbounded)")
	selfTrace := flag.Bool("self-trace", false, "record extraction spans and serve them at /debug/selftrace (bounded by -selftrace-max-spans; debugging only)")
	selfTraceMaxSpans := flag.Int("selftrace-max-spans", 0, "self-trace span retention cap (0 = default ~1M, negative = unbounded); spans past it are dropped and counted")
	debugUnsafe := flag.Bool("debug-unsafe", false, "enable mutating debug operations (?reset=1 on /debug/stats and /debug/selftrace)")
	nodeName := flag.String("node-name", "", "this node's cluster member name (labels metrics and logs; required with -peers)")
	peers := flag.String("peers", "", "cluster member list as name=url,name=url (must include -node-name; enables peer cache fill)")
	peersConfig := flag.String("peers-config", "", "path to a JSON cluster member file (alternative to -peers)")
	peerFanout := flag.Int("peer-fanout", 0, "ring siblings asked per peer fill (0 = 2)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	logging := cli.NewLogging("json", flag.CommandLine)
	tele := cli.NewProfiling("charmd", flag.CommandLine)
	flag.Parse()
	if err := tele.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "charmd:", err)
		os.Exit(1)
	}
	accessLog, err := logging.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "charmd:", err)
		os.Exit(1)
	}

	cfg := server.Config{
		DataDir:                  *dataDir,
		MaxMemEntries:            *memEntries,
		MaxUploadBytes:           *maxUpload,
		RequestTimeout:           *reqTimeout,
		Parallelism:              *parallelism,
		MaxConcurrentExtractions: *maxExtractions,
		QueueWait:                *queueWait,
		DetachedTimeout:          *detachedTimeout,
		MaxResultBytes:           *maxResultBytes,
		SelfTrace:                *selfTrace,
		SelfTraceMaxSpans:        *selfTraceMaxSpans,
		AccessLog:                accessLog,
		DebugUnsafe:              *debugUnsafe,
		NodeName:                 *nodeName,
	}
	// The peer client is built after the server so its counters land in the
	// server's registry; the config closures bind late, and nothing calls
	// them until the listener below starts accepting requests.
	var pc *cluster.Peers
	clustered := *peers != "" || *peersConfig != ""
	if clustered {
		cfg.PeerFetch = func(ctx context.Context, traceDigest, key string) (io.ReadCloser, error) {
			return pc.FetchResult(ctx, traceDigest, key)
		}
		cfg.TraceFetch = func(ctx context.Context, digest string) (io.ReadCloser, error) {
			return pc.FetchTrace(ctx, digest)
		}
	}
	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "charmd:", err)
		os.Exit(1)
	}
	if clustered {
		var members []cluster.Member
		switch {
		case *peers != "" && *peersConfig != "":
			err = errors.New("-peers and -peers-config are mutually exclusive")
		case *peers != "":
			members, err = cluster.ParsePeers(*peers)
		default:
			members, err = cluster.LoadMembersFile(*peersConfig)
		}
		if err == nil {
			pc, err = cluster.NewPeers(cluster.PeersConfig{
				Self:    *nodeName,
				Members: members,
				Fanout:  *peerFanout,
				Metrics: srv.Registry(),
			})
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "charmd:", err)
			os.Exit(1)
		}
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("charmd: serving on %s (data dir %q, parallelism %d)\n", *addr, *dataDir, *parallelism)

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "charmd: signal received, draining in-flight requests")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "charmd: shutdown:", err)
		}
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "charmd: drain:", err)
		}
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "charmd:", err)
			os.Exit(1)
		}
	}
	if err := tele.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "charmd:", err)
		os.Exit(1)
	}
}
