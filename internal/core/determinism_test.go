package core_test

// Determinism suite for the parallel extraction engine: for every bundled
// proxy application, Extract with Parallelism 1 (the fully sequential
// pipeline) and Parallelism 8 must produce identical rendered output and
// identical pipeline statistics. The suite runs under -race in the tier-1
// verify recipe, so it also exercises the worker pools for data races.

import (
	"bytes"
	"testing"

	"charmtrace/internal/apps/faultsim"
	"charmtrace/internal/apps/jacobi"
	"charmtrace/internal/apps/lassen"
	"charmtrace/internal/apps/lbmigrate"
	"charmtrace/internal/apps/lulesh"
	"charmtrace/internal/apps/mergetree"
	"charmtrace/internal/apps/nasbt"
	"charmtrace/internal/apps/ordstress"
	"charmtrace/internal/apps/pdes"
	"charmtrace/internal/core"
	"charmtrace/internal/telemetry"
	"charmtrace/internal/trace"
	"charmtrace/internal/viz"
)

// proxyWorkloads is one representative trace per bundled proxy app, paired
// with the options the paper's case study uses for it. The merge tree is
// scaled down from the paper's 1,024 processes to keep the -race runs fast;
// the benchmark suite covers the full size.
var proxyWorkloads = []struct {
	name string
	gen  func() (*trace.Trace, error)
	opt  core.Options
}{
	{"jacobi", func() (*trace.Trace, error) { return jacobi.Trace(jacobi.DefaultConfig()) }, core.DefaultOptions()},
	{"lulesh-charm", func() (*trace.Trace, error) { return lulesh.CharmTrace(lulesh.DefaultConfig()) }, core.DefaultOptions()},
	{"lulesh-mpi", func() (*trace.Trace, error) { return lulesh.MPITrace(lulesh.DefaultConfig()) }, core.MessagePassingOptions()},
	{"lassen", func() (*trace.Trace, error) { return lassen.CharmTrace(lassen.DefaultConfig()) }, core.DefaultOptions()},
	{"mergetree", func() (*trace.Trace, error) {
		cfg := mergetree.DefaultConfig()
		cfg.Procs = 128
		return mergetree.Trace(cfg)
	}, core.MessagePassingOptions()},
	{"pdes", func() (*trace.Trace, error) { return pdes.Trace(pdes.DefaultConfig()) }, core.DefaultOptions()},
	{"nasbt", func() (*trace.Trace, error) { return nasbt.Trace(nasbt.DefaultConfig()) }, core.MessagePassingOptions()},
	{"lbmigrate", func() (*trace.Trace, error) { return lbmigrate.Trace(lbmigrate.DefaultConfig()) }, core.DefaultOptions()},
	{"faultsim", func() (*trace.Trace, error) { return faultsim.Trace(faultsim.DefaultConfig()) }, core.DefaultOptions()},
	{"ordstress", func() (*trace.Trace, error) { return ordstress.Trace(ordstress.DefaultConfig()) }, core.DefaultOptions()},
}

// TestExtractParallelismInvariance: extraction output is byte-identical
// between the sequential pipeline and an 8-worker pool, on every proxy app.
func TestExtractParallelismInvariance(t *testing.T) {
	for _, w := range proxyWorkloads {
		w := w
		t.Run(w.name, func(t *testing.T) {
			t.Parallel()
			tr, err := w.gen()
			if err != nil {
				t.Fatal(err)
			}
			seq := w.opt
			seq.Parallelism = 1
			par := w.opt
			par.Parallelism = 8

			s1, err := core.Extract(tr, seq)
			if err != nil {
				t.Fatal(err)
			}
			s8, err := core.Extract(tr, par)
			if err != nil {
				t.Fatal(err)
			}

			if got, want := viz.Logical(s8), viz.Logical(s1); got != want {
				t.Errorf("RenderLogical output differs between Parallelism 1 and 8")
			}
			if s1.NumPhases() != s8.NumPhases() {
				t.Errorf("phase counts differ: %d vs %d", s1.NumPhases(), s8.NumPhases())
			}
			for e := range tr.Events {
				if s1.PhaseOf[e] != s8.PhaseOf[e] || s1.LocalStep[e] != s8.LocalStep[e] || s1.Step[e] != s8.Step[e] {
					t.Fatalf("event %d placement differs: phase %d/%d local %d/%d global %d/%d",
						e, s1.PhaseOf[e], s8.PhaseOf[e],
						s1.LocalStep[e], s8.LocalStep[e], s1.Step[e], s8.Step[e])
				}
			}
			if len(s1.Stats.MergedBy) != len(s8.Stats.MergedBy) {
				t.Errorf("MergedBy stage sets differ: %v vs %v", s1.Stats.MergedBy, s8.Stats.MergedBy)
			}
			for stage, n := range s1.Stats.MergedBy {
				if s8.Stats.MergedBy[stage] != n {
					t.Errorf("MergedBy[%q] differs: %d vs %d", stage, n, s8.Stats.MergedBy[stage])
				}
			}
			if s1.Stats.InitialPartitions != s8.Stats.InitialPartitions {
				t.Errorf("InitialPartitions differ: %d vs %d",
					s1.Stats.InitialPartitions, s8.Stats.InitialPartitions)
			}
			if s1.Stats.EnforceRounds != s8.Stats.EnforceRounds {
				t.Errorf("EnforceRounds differ: %d vs %d",
					s1.Stats.EnforceRounds, s8.Stats.EnforceRounds)
			}

			// A fully-recording run (span collector + shared metrics
			// registry, 8 workers) must still produce byte-identical output:
			// telemetry observes the pipeline, never steers it.
			rec := par
			rec.Telemetry = telemetry.NewCollector()
			rec.Metrics = telemetry.NewRegistry()
			sr, err := core.Extract(tr, rec)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := viz.Logical(sr), viz.Logical(s1); got != want {
				t.Errorf("recording run output differs from sequential run")
			}
			if spans := rec.Telemetry.(*telemetry.Collector).Spans(); len(spans) == 0 {
				t.Error("recording run collected no spans")
			}
			if snap := rec.Metrics.Snapshot(); len(snap.Counters) == 0 {
				t.Error("recording run merged no metrics into the shared registry")
			}
		})
	}
}

// TestExtractEncodedBytesAcrossParallelism: the cache's byte-identity
// contract, pinned at the codec layer — EncodeStructure of an extraction at
// Parallelism 1, 2 and 4 yields the same bytes on every proxy app, so one
// disk entry (and one content address) serves requests at any worker count.
func TestExtractEncodedBytesAcrossParallelism(t *testing.T) {
	for _, w := range proxyWorkloads {
		w := w
		t.Run(w.name, func(t *testing.T) {
			t.Parallel()
			tr, err := w.gen()
			if err != nil {
				t.Fatal(err)
			}
			var golden []byte
			for _, par := range []int{1, 2, 4} {
				opt := w.opt
				opt.Parallelism = par
				s, err := core.Extract(tr, opt)
				if err != nil {
					t.Fatalf("par=%d: %v", par, err)
				}
				var buf bytes.Buffer
				if err := core.EncodeStructure(&buf, s); err != nil {
					t.Fatalf("par=%d: encode: %v", par, err)
				}
				if golden == nil {
					golden = buf.Bytes()
				} else if !bytes.Equal(buf.Bytes(), golden) {
					t.Fatalf("par=%d: encoded bytes differ from par=1", par)
				}
			}
		})
	}
}

// TestExtractConcurrentSameTrace: Extract only reads an indexed trace, so
// concurrent extractions of the same *Trace must be safe (exercised for
// data races by the tier-1 -race run) and agree with each other.
func TestExtractConcurrentSameTrace(t *testing.T) {
	tr, err := jacobi.Trace(jacobi.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Parallelism = 4
	const n = 6
	results := make([]*core.Structure, n)
	errs := make([]error, n)
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			results[i], errs[i] = core.Extract(tr, opt)
			done <- i
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("extraction %d: %v", i, errs[i])
		}
	}
	want := viz.Logical(results[0])
	for i := 1; i < n; i++ {
		if viz.Logical(results[i]) != want {
			t.Fatalf("extraction %d produced a different structure", i)
		}
	}
}
