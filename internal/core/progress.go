package core

import (
	"sync/atomic"
	"time"
)

// Progress publishes an extraction's live position: the stage currently
// running, and how far through the stage's dominant loop it is (items
// scanned vs total — events for the sweep stages, partitions for the
// per-partition scans, phases for the ordering stage). It is the data
// source behind charmd's GET /debug/flights: the operator's answer to "why
// is this upload hanging".
//
// All fields are atomics, so the pipeline updates them lock-free at worker-
// chunk granularity (never per event) and any goroutine may Snapshot
// concurrently. Like the telemetry sinks, Progress only observes: an
// extraction's output is byte-identical with or without one attached, it is
// excluded from Options.Fingerprint, and a nil Progress costs the pipeline
// one pointer check per chunk — which is what keeps the telemetry-off
// overhead guard (<2%, DESIGN.md §3b) intact.
type Progress struct {
	start   time.Time
	stage   atomic.Pointer[string]
	scanned atomic.Int64
	total   atomic.Int64
}

// NewProgress returns a Progress whose clock starts now.
func NewProgress() *Progress { return &Progress{start: time.Now()} }

// SetStage records that the named stage began, resetting the loop counters.
// Exported so substituted extractors (resultcache.Config.Extract) can
// publish progress the same way core.Extract does.
func (p *Progress) SetStage(name string) {
	p.stage.Store(&name)
	p.scanned.Store(0)
	p.total.Store(0)
}

// StartLoop declares the current stage's dominant loop size.
func (p *Progress) StartLoop(total int64) {
	p.scanned.Store(0)
	p.total.Store(total)
}

// Add records n items completed in the current loop.
func (p *Progress) Add(n int64) { p.scanned.Add(n) }

// ProgressSnapshot is one consistent-enough read of a Progress: the fields
// are read individually (torn reads across a stage boundary can pair a new
// stage with an old counter for one poll), which is fine for an operator
// display and keeps the hot path free of locks.
type ProgressSnapshot struct {
	Stage   string        `json:"stage"`
	Scanned int64         `json:"scanned"`
	Total   int64         `json:"total"`
	Elapsed time.Duration `json:"elapsed_ns"`
}

// Snapshot reads the current position. Safe on a nil Progress (zero value).
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	s := ProgressSnapshot{
		Scanned: p.scanned.Load(),
		Total:   p.total.Load(),
		Elapsed: time.Since(p.start),
	}
	if name := p.stage.Load(); name != nil {
		s.Stage = *name
	}
	return s
}
