package metrics

import (
	"testing"

	"charmtrace/internal/apps/nasbt"
	"charmtrace/internal/core"
	"charmtrace/internal/trace"
)

func TestLatenessProperties(t *testing.T) {
	tr := nasbt.MustTrace(nasbt.DefaultConfig())
	s, err := core.Extract(tr, core.MessagePassingOptions())
	if err != nil {
		t.Fatal(err)
	}
	late := Lateness(s)
	if len(late) != len(tr.Events) {
		t.Fatalf("lateness entries = %d, want %d", len(late), len(tr.Events))
	}
	// Non-negative; at least one zero per populated step.
	zeroAt := map[int32]bool{}
	for e, v := range late {
		if v < 0 {
			t.Fatalf("negative lateness at event %d", e)
		}
		if v == 0 {
			zeroAt[s.Step[e]] = true
		}
	}
	for e := range tr.Events {
		if !zeroAt[s.Step[e]] {
			t.Fatalf("step %d has no zero-lateness event", s.Step[e])
		}
	}
	// Lateness equals time minus the step minimum.
	min := map[int32]trace.Time{}
	for e := range tr.Events {
		st := s.Step[e]
		if cur, ok := min[st]; !ok || tr.Events[e].Time < cur {
			min[st] = tr.Events[e].Time
		}
	}
	for e := range tr.Events {
		if late[e] != tr.Events[e].Time-min[s.Step[e]] {
			t.Fatalf("lateness mismatch at event %d", e)
		}
	}
}

func TestReportTotals(t *testing.T) {
	tr := twoChareTrace(t)
	r := Compute(extract(t, tr))
	var idle, imb trace.Time
	for _, v := range r.IdleExperienced {
		idle += v
	}
	for _, v := range r.PhaseImbalance {
		imb += v
	}
	if r.TotalIdleExperienced() != idle {
		t.Fatalf("TotalIdleExperienced = %d, want %d", r.TotalIdleExperienced(), idle)
	}
	if r.TotalImbalance() != imb {
		t.Fatalf("TotalImbalance = %d, want %d", r.TotalImbalance(), imb)
	}
}

func TestHighDifferentialEventsEmptyWhenUniform(t *testing.T) {
	// All sub-blocks identical -> no differential signal.
	b := trace.NewBuilder(2)
	e := b.AddEntry("work")
	c0 := b.AddChare("a", trace.NoArray, -1, 0)
	c1 := b.AddChare("b", trace.NoArray, -1, 1)
	m0, m1 := b.NewMsg(), b.NewMsg()
	b.BeginBlock(c0, 0, e, 0)
	b.Send(c0, m0, 10)
	b.EndBlock(c0, 10)
	b.BeginBlock(c1, 1, e, 0)
	b.Send(c1, m1, 10)
	b.EndBlock(c1, 10)
	b.BeginBlock(c0, 0, e, 2000)
	b.Recv(c0, m1, 2000)
	b.EndBlock(c0, 2000)
	b.BeginBlock(c1, 1, e, 2000)
	b.Recv(c1, m0, 2000)
	b.EndBlock(c1, 2000)
	tr := b.MustFinish()
	r := Compute(extract(t, tr))
	if got := r.HighDifferentialEvents(0.5); got != nil {
		t.Fatalf("uniform trace produced high-differential events: %v", got)
	}
	if max, _ := r.MaxDifferentialDuration(); max != 0 {
		t.Fatalf("uniform trace max differential = %d", max)
	}
}
