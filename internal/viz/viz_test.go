package viz

import (
	"strings"
	"testing"

	"charmtrace/internal/apps/jacobi"
	"charmtrace/internal/core"
	"charmtrace/internal/metrics"
)

func structure(t *testing.T) *core.Structure {
	t.Helper()
	tr := jacobi.MustTrace(jacobi.DefaultConfig())
	s, err := core.Extract(tr, core.DefaultOptions())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	return s
}

func TestLogicalGrid(t *testing.T) {
	s := structure(t)
	out := Logical(s)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + ruler + one row per chare.
	if len(lines) != 2+len(s.Trace.Chares) {
		t.Fatalf("lines = %d, want %d", len(lines), 2+len(s.Trace.Chares))
	}
	if !strings.Contains(lines[1], "|") {
		t.Fatal("ruler missing")
	}
	lines = lines[1:]
	// Application rows come before runtime rows.
	sawRuntime := false
	for _, l := range lines[1:] {
		isRT := strings.HasPrefix(l, "CkReductionMgr")
		if isRT {
			sawRuntime = true
		} else if sawRuntime {
			t.Fatal("application chare below runtime chares")
		}
	}
	if !sawRuntime {
		t.Fatal("no runtime rows rendered")
	}
	// Every non-empty cell is a phase symbol.
	body := strings.Join(lines[1:], "")
	if !strings.ContainsAny(body, phaseSymbols) {
		t.Fatal("no phase symbols rendered")
	}
}

func TestLogicalMetricShades(t *testing.T) {
	s := structure(t)
	r := metrics.Compute(s)
	out := LogicalMetric(s, r.DifferentialDuration)
	if !strings.ContainsAny(out, "123456789") && !strings.Contains(out, "0") {
		t.Fatal("no metric shading rendered")
	}
}

func TestPhysicalGrid(t *testing.T) {
	s := structure(t)
	out := Physical(s.Trace, s, 80)
	if !strings.Contains(out, "time ") {
		t.Fatal("missing header")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+len(s.Trace.Chares) {
		t.Fatalf("lines = %d, want %d", len(lines), 1+len(s.Trace.Chares))
	}
	// Idle must appear somewhere (Jacobi waits on reductions).
	if !strings.Contains(out, "-") {
		t.Fatal("no idle rendered")
	}
}

func TestPhysicalWithoutStructure(t *testing.T) {
	s := structure(t)
	out := Physical(s.Trace, nil, 40)
	if !strings.Contains(out, "#") {
		t.Fatal("blocks not rendered without structure")
	}
}

func TestLogicalSVGWellFormed(t *testing.T) {
	s := structure(t)
	svg := LogicalSVG(s)
	for _, want := range []string{"<svg", "</svg>", "<rect", "<line", "<text"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	if strings.Count(svg, "<svg") != 1 {
		t.Fatal("multiple svg roots")
	}
}

func TestLogicalClustered(t *testing.T) {
	s := structure(t)
	rows := []ClusterRow{
		{Representative: 0, Label: "jacobi[0] x4"},
		{Representative: 5, Label: "jacobi[5] x12"},
	}
	out := LogicalClustered(s, rows)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3 (header + 2 rows)", len(lines))
	}
	if !strings.Contains(out, "x12") {
		t.Fatal("multiplicity label missing")
	}
	if !strings.Contains(lines[0], "2 rows for") {
		t.Fatalf("header missing compression note: %q", lines[0])
	}
}

func TestPhaseSummary(t *testing.T) {
	s := structure(t)
	out := PhaseSummary(s)
	if !strings.Contains(out, "runtime") || !strings.Contains(out, "app") {
		t.Fatal("summary missing phase kinds")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+s.NumPhases() {
		t.Fatalf("summary lines = %d, want %d", len(lines), 1+s.NumPhases())
	}
}
