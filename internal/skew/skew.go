// Package skew models and repairs per-processor clock skew in traces.
//
// Section 4 of the paper notes that metrics comparing times across
// processors suffer from clock-synchronization problems and that
// post-processing algorithms (Rabenseifner's controlled logical clock [25],
// Becker et al. [5]) ameliorate the issue. This package provides both
// directions: Inject shifts each processor's clock to create a skewed trace
// for testing, and Correct recovers per-processor offsets that restore the
// causal send-before-receive order, by solving the system of difference
// constraints induced by every cross-processor message with a shortest-path
// (Bellman-Ford) pass.
package skew

import (
	"fmt"

	"charmtrace/internal/trace"
)

// Inject returns a copy of the trace with every record on processor p
// shifted by offsets[p]. Per-processor event order is preserved, so the
// result is structurally valid even when the shifts break cross-processor
// causality (a receive appearing before its send — the artifact real skewed
// clocks produce).
func Inject(tr *trace.Trace, offsets []trace.Time) (*trace.Trace, error) {
	if len(offsets) != tr.NumPE {
		return nil, fmt.Errorf("skew: %d offsets for %d PEs", len(offsets), tr.NumPE)
	}
	out := &trace.Trace{
		NumPE:   tr.NumPE,
		Chares:  append([]trace.Chare(nil), tr.Chares...),
		Entries: append([]trace.Entry(nil), tr.Entries...),
		Blocks:  make([]trace.Block, len(tr.Blocks)),
		Events:  make([]trace.Event, len(tr.Events)),
		Idles:   make([]trace.Idle, len(tr.Idles)),
	}
	for i, b := range tr.Blocks {
		b.Begin += offsets[b.PE]
		b.End += offsets[b.PE]
		b.Events = append([]trace.EventID(nil), b.Events...)
		out.Blocks[i] = b
	}
	for i, ev := range tr.Events {
		ev.Time += offsets[ev.PE]
		out.Events[i] = ev
	}
	for i, idle := range tr.Idles {
		idle.Begin += offsets[idle.PE]
		idle.End += offsets[idle.PE]
		out.Idles[i] = idle
	}
	if err := out.Index(); err != nil {
		return nil, fmt.Errorf("skew: %w", err)
	}
	return out, nil
}

// Violations counts messages whose receive is recorded less than minGap
// after its send — the causal inconsistencies clock skew introduces.
func Violations(tr *trace.Trace, minGap trace.Time) int {
	n := 0
	for e := range tr.Events {
		ev := &tr.Events[e]
		if ev.Kind != trace.Recv || ev.Msg == trace.NoMsg {
			continue
		}
		send := tr.SendOf(ev.Msg)
		if send == trace.NoEvent {
			continue
		}
		if ev.Time < tr.Events[send].Time+minGap {
			n++
		}
	}
	return n
}

// Correct estimates per-processor offsets restoring causality: for every
// cross-processor message (send at t1 on A, receive at t2 on B) it requires
//
//	t1 + off[A] + minGap <= t2 + off[B]
//
// and solves the difference-constraint system by Bellman-Ford over the
// processor graph. It returns the corrected trace and the offsets applied
// (normalized so the smallest is zero). If the constraints are infeasible —
// genuinely contradictory message timings rather than uniform skew — it
// returns an error identifying the negative cycle's span.
func Correct(tr *trace.Trace, minGap trace.Time) (*trace.Trace, []trace.Time, error) {
	const inf = trace.Time(1) << 62
	// dist[p] plays x_p in the difference constraints: x_A - x_B <= c for
	// each message A->B with c = t2 - t1 - minGap, i.e. edge B -> A with
	// weight c. A virtual source (dist 0) connects to every node.
	dist := make([]trace.Time, tr.NumPE)
	type edge struct {
		from, to int
		w        trace.Time
	}
	var edges []edge
	for e := range tr.Events {
		ev := &tr.Events[e]
		if ev.Kind != trace.Recv || ev.Msg == trace.NoMsg {
			continue
		}
		send := tr.SendOf(ev.Msg)
		if send == trace.NoEvent {
			continue
		}
		sv := &tr.Events[send]
		if sv.PE == ev.PE {
			continue
		}
		edges = append(edges, edge{
			from: int(ev.PE), to: int(sv.PE),
			w: ev.Time - sv.Time - minGap,
		})
	}
	for i := 0; i < tr.NumPE; i++ {
		relaxed := false
		for _, e := range edges {
			if dist[e.from]+e.w < dist[e.to] {
				dist[e.to] = dist[e.from] + e.w
				relaxed = true
			}
		}
		if !relaxed {
			break
		}
		if i == tr.NumPE-1 {
			return nil, nil, fmt.Errorf("skew: constraints infeasible — message timings between processors are mutually contradictory (not a uniform per-processor skew)")
		}
	}
	// dist are the offsets (x_p); normalize so the minimum is zero and no
	// record moves before the epoch.
	min := inf
	for _, d := range dist {
		if d < min {
			min = d
		}
	}
	offsets := make([]trace.Time, tr.NumPE)
	for p := range offsets {
		offsets[p] = dist[p] - min
	}
	out, err := Inject(tr, offsets)
	if err != nil {
		return nil, nil, err
	}
	return out, offsets, nil
}
