// Package resultcache is a content-addressed cache of extraction results:
// the layer that turns core.Extract from a per-request cost into a
// mostly-amortized one for the charmd analysis server.
//
// Results are keyed by (trace digest, canonical Options fingerprint). The
// trace digest addresses the input bytes (tracefile.ReadAutoDigest); the
// fingerprint (core.Options.Fingerprint) canonicalizes every option that
// can change the recovered structure while deliberately excluding
// execution-only knobs like Parallelism — the pipeline is byte-identical at
// every worker count, so one cached result serves requests at any.
//
// Three layers, consulted in order:
//
//  1. an in-memory LRU of decoded *core.Structure values (bounded entry
//     count; hits are lock-then-return);
//  2. an on-disk store of binary-encoded results (core.EncodeStructure),
//     written atomically, surviving process restarts;
//  3. extraction itself, guarded by request coalescing: N concurrent
//     requests for one uncached key trigger exactly one Extract, and the
//     followers share the leader's result (a singleflight).
//
// Flights are detached from their requesters: the extraction runs on a
// cache-owned goroutine with its own context, so a caller whose deadline
// expires gets its error immediately while the flight keeps running and
// populates the cache — a retry after a timeout coalesces onto the
// still-running flight (or hits). Config.DetachedTimeout is the hard cap
// after which an orphaned flight is itself cancelled (cooperatively, via
// core.Options.Context) instead of burning CPU forever, and Close drains or
// cancels outstanding flights for shutdown.
//
// Cached structures are shared between requests and must be treated as
// read-only; everything the serving layer does (rendering, metrics,
// structdiff) only reads. Every layer's traffic is counted in a
// telemetry.Registry so /debug/stats can report hit rates and extraction
// latency. When Config.MaxDiskBytes is set, the disk layer is size-bounded:
// after each write the least-recently-modified entries are garbage-collected
// until the store fits.
package resultcache

import (
	"bytes"
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"charmtrace/internal/core"
	"charmtrace/internal/telemetry"
	"charmtrace/internal/trace"
)

// DefaultMaxMemEntries bounds the in-memory LRU when Config leaves it zero.
const DefaultMaxMemEntries = 64

// DefaultDetachedTimeout caps a detached flight when Config leaves it zero.
const DefaultDetachedTimeout = 5 * time.Minute

// DefaultMaxEntryBytes bounds one encoded entry accepted from a cluster
// peer when Config leaves MaxEntryBytes zero.
const DefaultMaxEntryBytes = 64 << 20

// ErrClosed is returned by Get after Close: the cache is draining and
// accepts no new flights. The serving layer maps it to 503.
var ErrClosed = errors.New("resultcache: closed")

// Config configures a Cache.
type Config struct {
	// Dir is the on-disk store directory, created if missing. Empty
	// disables the disk layer (memory + coalescing only).
	Dir string
	// MaxMemEntries bounds the in-memory LRU (0 = DefaultMaxMemEntries,
	// negative = no memory layer).
	MaxMemEntries int
	// MaxDiskBytes bounds the on-disk store: after each write, entries are
	// evicted least-recently-modified-first until the total fits. 0 leaves
	// the store unbounded.
	MaxDiskBytes int64
	// DetachedTimeout is the hard cap on one detached flight's extraction:
	// a flight every requester has abandoned is cancelled cooperatively
	// once the cap expires, counted in cache.cancelled. 0 selects
	// DefaultDetachedTimeout; negative disables the cap.
	DetachedTimeout time.Duration
	// Metrics receives the cache's counters and histograms. nil uses a
	// private registry (still queryable via Registry()).
	Metrics *telemetry.Registry
	// Extract computes a structure on a full miss. nil uses core.Extract;
	// tests substitute instrumented variants. The cache attaches the
	// flight's detached context via opt.Context; a well-behaved extractor
	// honors it (core.Extract does, at worker-chunk granularity).
	Extract func(tr *trace.Trace, opt core.Options) (*core.Structure, error)
	// Index derives a secondary read-only value from a cached structure
	// (charmd installs the query engine's index builder). Built lazily, at
	// most once per memory-resident entry, and dropped with it on
	// eviction; bytes is the value's estimated footprint, reported in the
	// cache.index_bytes gauge. nil disables GetIndexed/LookupIndexed's
	// index results. The builder is kept as a func to avoid a
	// resultcache→query dependency.
	Index func(s *core.Structure) (val any, bytes int64)
	// Aux derives a second read-only value from a cached structure, fully
	// independent of Index (charmd installs the LOD pyramid builder).
	// Same lifecycle as Index: built lazily at most once per
	// memory-resident entry, dropped with it on eviction, bytes reported
	// in the cache.aux_bytes gauge. nil disables GetAux/LookupAux's aux
	// results. Kept as a func to avoid a resultcache→lod dependency.
	Aux func(s *core.Structure) (val any, bytes int64)
	// PeerFetch asks cluster peers for an already-encoded entry before the
	// cache falls back to extraction on a full miss (charmd wires the
	// ring-successor client here). It receives the trace digest (the
	// routing key) and the entry's content address, and returns the
	// encoded-varint bytes a peer served from its disk store. Any error is
	// a peer-fill miss: the cache counts it and extracts locally. nil
	// disables peer fill. Kept as a func to avoid a resultcache→cluster
	// dependency.
	PeerFetch func(ctx context.Context, traceDigest, key string) (io.ReadCloser, error)
	// MaxEntryBytes bounds one encoded entry read from a cluster peer — the
	// same limit the serving layer passes to PutEntry for replication
	// writes, so a lying or corrupted peer cannot balloon a fill into an
	// unbounded allocation (0 = DefaultMaxEntryBytes, negative = unbounded).
	MaxEntryBytes int64
}

// Cache is the three-layer result cache. Safe for concurrent use.
type Cache struct {
	dir             string
	maxEntries      int
	maxDiskBytes    int64
	detachedTimeout time.Duration
	extract         func(tr *trace.Trace, opt core.Options) (*core.Structure, error)
	index           func(s *core.Structure) (any, int64)
	aux             func(s *core.Structure) (any, int64)
	peerFetch       func(ctx context.Context, traceDigest, key string) (io.ReadCloser, error)
	maxEntryBytes   int64
	readFile        func(string) ([]byte, error) // os.ReadFile; swapped by fault-injection tests

	reg           *telemetry.Registry
	hits          *telemetry.Counter // total hits (memory + disk)
	memHits       *telemetry.Counter
	diskHits      *telemetry.Counter
	misses        *telemetry.Counter // full misses (extraction ran)
	coalesced     *telemetry.Counter // requests served by another request's flight
	cancelled     *telemetry.Counter // flights whose extraction was cancelled (hard cap / Close)
	evictions     *telemetry.Counter
	diskErrors    *telemetry.Counter // unreadable/corrupt disk entries (self-healed)
	diskRetries   *telemetry.Counter // transient disk-read failures that were retried
	diskEvictions *telemetry.Counter // entries GCed to honor MaxDiskBytes
	indexBuilds   *telemetry.Counter // per-entry index constructions
	indexHits     *telemetry.Counter // indexed requests served by an already-built index
	auxBuilds     *telemetry.Counter // per-entry aux constructions
	auxHits       *telemetry.Counter // aux requests served by an already-built value
	peerHits      *telemetry.Counter // misses filled from a cluster peer (cache.peer_hits)
	peerMisses    *telemetry.Counter // peer fill attempted, fell back to extraction
	replicaWrites *telemetry.Counter // entries written through PutEntry (cache.replica_writes)
	extractMS     *telemetry.Histogram
	memEntries    *telemetry.Gauge
	indexBytes    *telemetry.Gauge // estimated bytes held by resident indexes
	auxBytes      *telemetry.Gauge // estimated bytes held by resident aux values
	flightsG      *telemetry.Gauge // in-progress extraction flights (cache.flights)

	mu            sync.Mutex
	closed        bool
	entries       map[string]*list.Element
	lru           *list.List // front = most recently used
	flights       map[string]*flight
	idxBytesTotal int64 // sum of accounted entry.idxBytes, mirrored into indexBytes
	auxBytesTotal int64 // sum of accounted entry.auxBytes, mirrored into auxBytes

	flightWG sync.WaitGroup // outstanding detached flights, for Close
	gcMu     sync.Mutex     // serializes disk GC sweeps
}

// entry is one memory-resident result plus its lazily-built derived
// values (the query index and the aux value, e.g. the LOD pyramid). Each
// is built at most once per entry (its Once), outside the cache lock;
// the Accounted flags record whether the bytes were added to the
// corresponding gauge (an entry evicted mid-build never gets accounted,
// and an accounted entry is subtracted on eviction).
type entry struct {
	id string
	s  *core.Structure

	idxOnce      sync.Once
	idx          any
	idxBytes     int64
	idxAccounted bool

	auxOnce      sync.Once
	aux          any
	auxBytes     int64
	auxAccounted bool
}

// flight is one in-progress extraction other requests can join. The
// extraction runs on a cache-owned goroutine under its own detached
// context; cancel aborts it (the hard cap and Close both use it). The
// identity, start time, live Progress and waiter count feed Flights() —
// charmd's /debug/flights. outcome (OutcomeDisk or OutcomeMiss) is written
// by the flight goroutine before done closes, so readers past the channel
// see it race-free.
type flight struct {
	done    chan struct{}
	cancel  context.CancelFunc
	s       *core.Structure
	err     error
	outcome string

	digest  string
	fp      string
	start   time.Time
	prog    *core.Progress
	waiters atomic.Int64
}

// New opens a cache, creating the disk directory if configured.
func New(cfg Config) (*Cache, error) {
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("resultcache: %w", err)
		}
	}
	max := cfg.MaxMemEntries
	if max == 0 {
		max = DefaultMaxMemEntries
	}
	if max < 0 {
		max = 0
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	ext := cfg.Extract
	if ext == nil {
		ext = core.Extract
	}
	dt := cfg.DetachedTimeout
	if dt == 0 {
		dt = DefaultDetachedTimeout
	}
	if dt < 0 {
		dt = 0 // no cap
	}
	meb := cfg.MaxEntryBytes
	if meb == 0 {
		meb = DefaultMaxEntryBytes
	}
	if meb < 0 {
		meb = 0 // unbounded
	}
	c := &Cache{
		dir:             cfg.Dir,
		maxEntries:      max,
		maxDiskBytes:    cfg.MaxDiskBytes,
		detachedTimeout: dt,
		extract:         ext,
		index:           cfg.Index,
		aux:             cfg.Aux,
		peerFetch:       cfg.PeerFetch,
		maxEntryBytes:   meb,
		readFile:        os.ReadFile,
		reg:             reg,
		hits:            reg.Counter("cache.hits"),
		memHits:         reg.Counter("cache.mem_hits"),
		diskHits:        reg.Counter("cache.disk_hits"),
		misses:          reg.Counter("cache.misses"),
		coalesced:       reg.Counter("cache.coalesced"),
		cancelled:       reg.Counter("cache.cancelled"),
		evictions:       reg.Counter("cache.evictions"),
		diskErrors:      reg.Counter("cache.disk_errors"),
		diskRetries:     reg.Counter("cache.disk_retries"),
		diskEvictions:   reg.Counter("cache.disk_evictions"),
		indexBuilds:     reg.Counter("cache.index_builds"),
		indexHits:       reg.Counter("cache.index_hits"),
		auxBuilds:       reg.Counter("cache.aux_builds"),
		auxHits:         reg.Counter("cache.aux_hits"),
		peerHits:        reg.Counter("cache.peer_hits"),
		peerMisses:      reg.Counter("cache.peer_misses"),
		replicaWrites:   reg.Counter("cache.replica_writes"),
		extractMS:       reg.Histogram("cache.extract_ms"),
		memEntries:      reg.Gauge("cache.mem_entries"),
		indexBytes:      reg.Gauge("cache.index_bytes"),
		auxBytes:        reg.Gauge("cache.aux_bytes"),
		flightsG:        reg.Gauge("cache.flights"),
		entries:         make(map[string]*list.Element),
		lru:             list.New(),
		flights:         make(map[string]*flight),
	}
	return c, nil
}

// Registry returns the registry the cache's metrics live in.
func (c *Cache) Registry() *telemetry.Registry { return c.reg }

// KeyID is the content address of one (trace, options) result:
// sha256(trace digest ‖ 0 ‖ options fingerprint), hex-encoded. Exported so
// the cluster layer (gateway replication, node internal endpoints) can name
// entries on the wire.
func KeyID(traceDigest, fingerprint string) string {
	h := sha256.New()
	h.Write([]byte(traceDigest))
	h.Write([]byte{0})
	h.Write([]byte(fingerprint))
	return hex.EncodeToString(h.Sum(nil))
}

// keyID is the internal alias of KeyID.
func keyID(traceDigest, fingerprint string) string { return KeyID(traceDigest, fingerprint) }

// ValidKey reports whether key has the shape KeyID produces (64 lowercase
// hex characters) — the internal endpoints reject anything else before it
// can touch the filesystem.
func ValidKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// DiskPath returns where the result for (traceDigest, opt) lives on disk,
// or "" when the disk layer is disabled. Exported for tests and operators
// inspecting the cache layout (README "Serving").
func (c *Cache) DiskPath(traceDigest string, opt core.Options) string {
	if c.dir == "" {
		return ""
	}
	return filepath.Join(c.dir, keyID(traceDigest, opt.Fingerprint())+".cstr")
}

// Len returns the number of memory-resident results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Lookup returns the memory-resident structure for (traceDigest, opt)
// without touching disk or starting a flight. It lets the serving layer
// bypass admission control for requests that do no extraction work. A hit
// counts like a Get memory hit.
func (c *Cache) Lookup(traceDigest string, opt core.Options) (*core.Structure, bool) {
	id := keyID(traceDigest, opt.Fingerprint())
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[id]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits.Add(1)
	c.memHits.Add(1)
	return el.Value.(*entry).s, true
}

// LookupIndexed is Lookup plus the entry's derived index, building it on
// first use. The index result is nil when Config.Index is unset. Like
// Lookup it never touches disk or starts a flight.
func (c *Cache) LookupIndexed(traceDigest string, opt core.Options) (*core.Structure, any, bool) {
	id := keyID(traceDigest, opt.Fingerprint())
	c.mu.Lock()
	el, ok := c.entries[id]
	if !ok {
		c.mu.Unlock()
		return nil, nil, false
	}
	c.lru.MoveToFront(el)
	e := el.Value.(*entry)
	c.mu.Unlock()
	c.hits.Add(1)
	c.memHits.Add(1)
	return e.s, c.indexFor(e), true
}

// GetIndexed is Get plus the entry's derived index. On a full miss the
// index is built against the freshly-inserted entry; if the entry was
// already evicted again (tiny MaxMemEntries under load) a transient,
// unaccounted index is built for this caller alone. The index result is
// nil when Config.Index is unset.
func (c *Cache) GetIndexed(ctx context.Context, traceDigest string, tr *trace.Trace, opt core.Options) (*core.Structure, any, error) {
	s, err := c.Get(ctx, traceDigest, tr, opt)
	if err != nil {
		return nil, nil, err
	}
	if c.index == nil {
		return s, nil, nil
	}
	id := keyID(traceDigest, opt.Fingerprint())
	c.mu.Lock()
	if el, ok := c.entries[id]; ok {
		e := el.Value.(*entry)
		c.mu.Unlock()
		return s, c.indexFor(e), nil
	}
	c.mu.Unlock()
	c.indexBuilds.Add(1)
	idx, _ := c.index(s)
	return s, idx, nil
}

// LookupAux is Lookup plus the entry's derived aux value, building it on
// first use. The aux result is nil when Config.Aux is unset. Like Lookup
// it never touches disk or starts a flight.
func (c *Cache) LookupAux(traceDigest string, opt core.Options) (*core.Structure, any, bool) {
	id := keyID(traceDigest, opt.Fingerprint())
	c.mu.Lock()
	el, ok := c.entries[id]
	if !ok {
		c.mu.Unlock()
		return nil, nil, false
	}
	c.lru.MoveToFront(el)
	e := el.Value.(*entry)
	c.mu.Unlock()
	c.hits.Add(1)
	c.memHits.Add(1)
	return e.s, c.auxFor(e), true
}

// GetAux is Get plus the entry's derived aux value. On a full miss the
// value is built against the freshly-inserted entry; if the entry was
// already evicted again (tiny MaxMemEntries under load) a transient,
// unaccounted value is built for this caller alone. The aux result is
// nil when Config.Aux is unset.
func (c *Cache) GetAux(ctx context.Context, traceDigest string, tr *trace.Trace, opt core.Options) (*core.Structure, any, error) {
	s, err := c.Get(ctx, traceDigest, tr, opt)
	if err != nil {
		return nil, nil, err
	}
	if c.aux == nil {
		return s, nil, nil
	}
	id := keyID(traceDigest, opt.Fingerprint())
	c.mu.Lock()
	if el, ok := c.entries[id]; ok {
		e := el.Value.(*entry)
		c.mu.Unlock()
		return s, c.auxFor(e), nil
	}
	c.mu.Unlock()
	c.auxBuilds.Add(1)
	v, _ := c.aux(s)
	return s, v, nil
}

// auxFor returns the entry's aux value, building it exactly once — the
// same discipline as indexFor (build outside c.mu, account only while
// resident, subtract on eviction).
func (c *Cache) auxFor(e *entry) any {
	if c.aux == nil {
		return nil
	}
	built := false
	e.auxOnce.Do(func() {
		built = true
		e.aux, e.auxBytes = c.aux(e.s)
		c.auxBuilds.Add(1)
		c.mu.Lock()
		if el, ok := c.entries[e.id]; ok && el.Value.(*entry) == e {
			e.auxAccounted = true
			c.auxBytesTotal += e.auxBytes
			c.auxBytes.Set(float64(c.auxBytesTotal))
		}
		c.mu.Unlock()
	})
	if !built {
		c.auxHits.Add(1)
	}
	return e.aux
}

// indexFor returns the entry's index, building it exactly once. The build
// runs outside c.mu (concurrent callers queue on the entry's Once, not on
// the cache); afterwards the bytes are accounted in the index_bytes gauge
// only if the entry is still resident — an entry evicted mid-build is
// never accounted, and insertLocked subtracts accounted entries on
// eviction.
func (c *Cache) indexFor(e *entry) any {
	if c.index == nil {
		return nil
	}
	built := false
	e.idxOnce.Do(func() {
		built = true
		e.idx, e.idxBytes = c.index(e.s)
		c.indexBuilds.Add(1)
		c.mu.Lock()
		if el, ok := c.entries[e.id]; ok && el.Value.(*entry) == e {
			e.idxAccounted = true
			c.idxBytesTotal += e.idxBytes
			c.indexBytes.Set(float64(c.idxBytesTotal))
		}
		c.mu.Unlock()
	})
	if !built {
		c.indexHits.Add(1)
	}
	return e.idx
}

// Get returns the recovered structure for (traceDigest, opt), serving from
// memory, then disk, then a coalesced extraction. tr must be the decoded
// trace the digest addresses; the first request for a key carries it to the
// extractor, and every hit ignores it beyond a consistency check during
// disk decode.
//
// ctx bounds only this caller's wait. The extraction itself runs on a
// cache-owned goroutine under a detached context: a caller that times out
// (leader or follower alike) gets ctx.Err() immediately while the flight
// keeps running and populates the cache, so an immediate retry coalesces
// onto the same flight — it never starts a second extraction — and a later
// one hits. A flight only dies with the process, with Close, or at the
// DetachedTimeout hard cap. The returned structure is shared — treat it as
// read-only.
func (c *Cache) Get(ctx context.Context, traceDigest string, tr *trace.Trace, opt core.Options) (*core.Structure, error) {
	id := keyID(traceDigest, opt.Fingerprint())

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if el, ok := c.entries[id]; ok {
		c.lru.MoveToFront(el)
		c.mu.Unlock()
		c.hits.Add(1)
		c.memHits.Add(1)
		RecordOutcome(ctx, OutcomeMem)
		return el.Value.(*entry).s, nil
	}
	fl, joined := c.flights[id]
	if !joined {
		fl = c.launchFlightLocked(ctx, id, traceDigest, tr, opt)
	}
	fl.waiters.Add(1)
	c.mu.Unlock()
	defer fl.waiters.Add(-1)
	if joined {
		c.coalesced.Add(1)
	}
	select {
	case <-fl.done:
		if fl.err == nil {
			if joined {
				RecordOutcome(ctx, OutcomeCoalesced)
			} else {
				RecordOutcome(ctx, fl.outcome)
			}
		}
		return fl.s, fl.err
	case <-ctx.Done():
		RecordOutcome(ctx, OutcomeDetached)
		return nil, ctx.Err()
	}
}

// launchFlightLocked registers and starts the detached flight for a key.
// Caller holds c.mu. callerCtx is the leader's request context: only its
// request id (if any) is copied onto the flight's detached context, so a
// -self-trace span of the extraction is attributable to the HTTP request
// that triggered it even after that request detaches.
func (c *Cache) launchFlightLocked(callerCtx context.Context, id, traceDigest string, tr *trace.Trace, opt core.Options) *flight {
	fctx := telemetry.WithRequestID(context.Background(), telemetry.RequestID(callerCtx))
	var cancel context.CancelFunc
	if c.detachedTimeout > 0 {
		fctx, cancel = context.WithTimeout(fctx, c.detachedTimeout)
	} else {
		fctx, cancel = context.WithCancel(fctx)
	}
	fl := &flight{
		done:   make(chan struct{}),
		cancel: cancel,
		digest: traceDigest,
		fp:     opt.Fingerprint(),
		start:  time.Now(),
		prog:   core.NewProgress(),
	}
	c.flights[id] = fl
	c.flightsG.Set(float64(len(c.flights)))
	c.flightWG.Add(1)
	go func() {
		defer c.flightWG.Done()
		defer cancel()
		fl.s, fl.outcome, fl.err = c.fill(fctx, id, traceDigest, fl.prog, tr, opt)
		c.mu.Lock()
		delete(c.flights, id)
		c.flightsG.Set(float64(len(c.flights)))
		if fl.err == nil {
			c.insertLocked(id, fl.s)
		}
		c.mu.Unlock()
		close(fl.done)
	}()
	return fl
}

// FlightInfo is one in-progress extraction flight as reported by Flights:
// its content address, how long it has been running, how many requests are
// waiting on it (0 = fully detached), and the pipeline's live position.
type FlightInfo struct {
	TraceDigest string                `json:"digest"`
	Fingerprint string                `json:"fingerprint"`
	ElapsedMS   float64               `json:"elapsed_ms"`
	Waiters     int64                 `json:"waiters"`
	Progress    core.ProgressSnapshot `json:"progress"`
}

// Flights reports every in-progress extraction, sorted by (digest,
// fingerprint) for stable output. This is the data behind charmd's
// GET /debug/flights.
func (c *Cache) Flights() []FlightInfo {
	c.mu.Lock()
	fls := make([]*flight, 0, len(c.flights))
	for _, fl := range c.flights {
		fls = append(fls, fl)
	}
	c.mu.Unlock()
	out := make([]FlightInfo, 0, len(fls))
	for _, fl := range fls {
		out = append(out, FlightInfo{
			TraceDigest: fl.digest,
			Fingerprint: fl.fp,
			ElapsedMS:   float64(time.Since(fl.start).Nanoseconds()) / 1e6,
			Waiters:     fl.waiters.Load(),
			Progress:    fl.prog.Snapshot(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TraceDigest != out[j].TraceDigest {
			return out[i].TraceDigest < out[j].TraceDigest
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}

// Close drains the cache for shutdown: new Gets fail with ErrClosed, and
// outstanding flights get until ctx expires to finish populating the cache;
// past the deadline they are cancelled cooperatively and Close waits for
// them to unwind. Close returns nil when every flight drained cleanly.
func (c *Cache) Close(ctx context.Context) error {
	c.mu.Lock()
	c.closed = true
	cancels := make([]context.CancelFunc, 0, len(c.flights))
	for _, fl := range c.flights {
		cancels = append(cancels, fl.cancel)
	}
	c.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		c.flightWG.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		for _, cancel := range cancels {
			cancel()
		}
		<-drained
		return ctx.Err()
	}
}

// fill resolves a memory miss as the flight leader: disk, then cluster
// peers, then extraction under the flight's detached context. The returned
// outcome (OutcomeDisk, OutcomePeer or OutcomeMiss) labels which layer
// answered.
func (c *Cache) fill(ctx context.Context, id, traceDigest string, prog *core.Progress, tr *trace.Trace, opt core.Options) (*core.Structure, string, error) {
	wantFP := opt.Fingerprint()
	path := ""
	if c.dir != "" {
		path = filepath.Join(c.dir, id+".cstr")
		if data, err := c.readDisk(path); err == nil {
			s, fp, err := core.DecodeStructure(bytes.NewReader(data), tr)
			if err == nil && fp == wantFP {
				c.hits.Add(1)
				c.diskHits.Add(1)
				c.touch(path)
				return s, OutcomeDisk, nil
			}
			// A corrupt or stale entry self-heals: count it, re-extract,
			// overwrite.
			c.diskErrors.Add(1)
		}
	}

	if c.peerFetch != nil {
		if s, ok := c.peerFill(ctx, traceDigest, id, path, wantFP, tr); ok {
			return s, OutcomePeer, nil
		}
	}

	c.misses.Add(1)
	start := time.Now()
	opt.Context = ctx
	opt.Progress = prog
	s, err := c.extract(tr, opt)
	if err != nil {
		if ctx.Err() != nil {
			// The detached flight itself was cancelled (hard cap or Close).
			c.cancelled.Add(1)
		}
		return nil, OutcomeMiss, fmt.Errorf("resultcache: extract: %w", err)
	}
	c.extractMS.Observe(float64(time.Since(start).Nanoseconds()) / 1e6)
	if path != "" {
		if err := c.writeDisk(path, s); err != nil {
			// Disk persistence is an optimization; the request still
			// succeeds from memory.
			c.diskErrors.Add(1)
		} else if c.maxDiskBytes > 0 {
			c.gcDisk()
		}
	}
	return s, OutcomeMiss, nil
}

// peerFill asks the cluster's peers for the encoded entry and, on success,
// decodes it against the local trace and persists the bytes so the next
// miss is a plain disk hit. Every failure (no peer has it, transport error,
// bytes that do not decode to the wanted fingerprint) is one peer-fill miss
// and the caller falls back to extraction — a lying or stale peer can cost
// a round trip, never correctness.
func (c *Cache) peerFill(ctx context.Context, traceDigest, id, path, wantFP string, tr *trace.Trace) (*core.Structure, bool) {
	rc, err := c.peerFetch(ctx, traceDigest, id)
	if err != nil {
		c.peerMisses.Add(1)
		return nil, false
	}
	// Bound the read to the same entry-size limit replication writes honor:
	// a peer streaming more than MaxEntryBytes is treated as a miss, not an
	// unbounded allocation.
	body := io.Reader(rc)
	if c.maxEntryBytes > 0 {
		body = io.LimitReader(rc, c.maxEntryBytes+1)
	}
	data, err := io.ReadAll(body)
	rc.Close()
	if err != nil || (c.maxEntryBytes > 0 && int64(len(data)) > c.maxEntryBytes) {
		c.peerMisses.Add(1)
		return nil, false
	}
	s, fp, err := core.DecodeStructure(bytes.NewReader(data), tr)
	if err != nil || fp != wantFP {
		c.peerMisses.Add(1)
		return nil, false
	}
	c.peerHits.Add(1)
	if path != "" {
		if err := c.writeDiskFrom(path, func(w io.Writer) error {
			_, err := w.Write(data)
			return err
		}); err != nil {
			c.diskErrors.Add(1)
		} else if c.maxDiskBytes > 0 {
			c.gcDisk()
		}
	}
	return s, true
}

// readDisk reads a cache entry, retrying exactly once on a transient
// failure: a missing file is a plain miss, but an EIO/EMFILE-style error on
// a file that should exist gets one more chance before the entry is
// declared unreadable and re-extracted.
func (c *Cache) readDisk(path string) ([]byte, error) {
	data, err := c.readFile(path)
	if err == nil || os.IsNotExist(err) {
		return data, err
	}
	c.diskRetries.Add(1)
	return c.readFile(path)
}

// writeDisk persists an encoded result atomically.
func (c *Cache) writeDisk(path string, s *core.Structure) error {
	return c.writeDiskFrom(path, func(w io.Writer) error { return core.EncodeStructure(w, s) })
}

// tmpSeq makes temp-file names unique across the process, so writeDiskFrom
// can open with O_EXCL on the first try instead of paying CreateTemp's
// random-name retry loop plus a Chmod on every entry.
var tmpSeq atomic.Uint64

// writeDiskFrom persists one entry atomically (temp file + rename), so a
// crash mid-write never leaves a truncated entry a later decode would
// reject. The entry is created world-readable (0644, not CreateTemp's 0600)
// so operators and sidecar readers can inspect .cstr files in place.
func (c *Cache) writeDiskFrom(path string, write func(io.Writer) error) error {
	name := filepath.Join(c.dir, fmt.Sprintf(".tmp-%d-%d", os.Getpid(), tmpSeq.Add(1)))
	tmp, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if err := write(tmp); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, path)
}

// ErrNoEntry is returned by OpenEntry when the disk store has no entry for
// a key — because it was never written, was garbage-collected, or the disk
// layer is disabled. The internal endpoint maps it to 404 and a peer-fill
// caller falls back to extraction.
var ErrNoEntry = errors.New("resultcache: no such entry")

// ErrBadEntry tags PutEntry rejections the sender caused — an invalid key,
// a body that is not an encoded structure, or one past the size limit. The
// internal endpoint maps it to 400.
var ErrBadEntry = errors.New("resultcache: bad entry")

// OpenEntry opens the raw encoded bytes of one disk entry for zero-copy
// serving (no decode, no buffering — the caller streams the file). The
// returned reader stays valid even if the entry is garbage-collected
// mid-stream: the open file outlives the unlink, so a concurrent GC sweep
// can never truncate a response half-way. Any failure to open is ErrNoEntry.
func (c *Cache) OpenEntry(key string) (io.ReadCloser, int64, error) {
	if c.dir == "" || !ValidKey(key) {
		return nil, 0, ErrNoEntry
	}
	path := filepath.Join(c.dir, key+".cstr")
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, ErrNoEntry
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, ErrNoEntry
	}
	c.touch(path)
	return f, info.Size(), nil
}

// touch refreshes a disk entry's mtime, best-effort. The disk GC evicts
// least-recently-modified first, so without this a frequently-read entry
// that was written long ago looks cold and gets evicted before entries
// nobody has asked for since their write — reads must count as recency for
// the mtime order to be an LRU. Racing with a concurrent GC removal is
// fine: Chtimes on an unlinked path just fails, and the open file (if any)
// still serves.
func (c *Cache) touch(path string) {
	now := time.Now()
	os.Chtimes(path, now, now)
}

// ReadSummary stream-decodes the phase-table summary of one disk entry —
// the zero-copy serving path for phase-table queries: no trace attach, no
// per-event arrays, O(phases) work. A decodable entry whose fingerprint
// matches counts as a disk hit and refreshes the entry's recency; an entry
// that is missing is ErrNoEntry, and one that is corrupt or stale is
// counted like any unreadable entry and also reported as ErrNoEntry so the
// caller falls back to the full (self-healing) path.
func (c *Cache) ReadSummary(key, wantFP string) (*core.StructureSummary, error) {
	if c.dir == "" || !ValidKey(key) {
		return nil, ErrNoEntry
	}
	path := filepath.Join(c.dir, key+".cstr")
	f, err := os.Open(path)
	if err != nil {
		return nil, ErrNoEntry
	}
	defer f.Close()
	sum, err := core.DecodeStructureSummary(f)
	if err != nil || sum.Fingerprint != wantFP {
		c.diskErrors.Add(1)
		return nil, ErrNoEntry
	}
	c.hits.Add(1)
	c.diskHits.Add(1)
	c.touch(path)
	return sum, nil
}

// PutEntry writes one already-encoded entry into the disk store (the
// replication write path). The body's 4-byte magic is checked before
// anything is spooled; deeper validation is deliberately deferred to the
// read path, where DecodeStructure's fingerprint check self-heals any entry
// that is corrupt past the magic. limit > 0 bounds the accepted size. The
// write is atomic and GC runs after it when the store is bounded.
func (c *Cache) PutEntry(key string, r io.Reader, limit int64) (int64, error) {
	if c.dir == "" {
		return 0, fmt.Errorf("resultcache: disk store disabled")
	}
	if !ValidKey(key) {
		return 0, fmt.Errorf("%w: invalid key %q", ErrBadEntry, key)
	}
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return 0, fmt.Errorf("resultcache: entry body: %w", err)
	}
	if string(magic[:]) != core.StructMagic {
		return 0, fmt.Errorf("%w: body is not an encoded structure", ErrBadEntry)
	}
	body := io.Reader(r)
	if limit > 0 {
		body = io.LimitReader(r, limit+1)
	}
	var n int64
	err := c.writeDiskFrom(filepath.Join(c.dir, key+".cstr"), func(w io.Writer) error {
		if _, err := w.Write(magic[:]); err != nil {
			return err
		}
		m, err := io.Copy(w, body)
		n = m + int64(len(magic))
		if err != nil {
			return err
		}
		if limit > 0 && n > limit {
			return fmt.Errorf("resultcache: entry exceeds %d bytes", limit)
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	c.replicaWrites.Add(1)
	if c.maxDiskBytes > 0 {
		c.gcDisk()
	}
	return n, nil
}

// gcDisk enforces MaxDiskBytes: when the .cstr entries outgrow the bound,
// the least-recently-modified ones are removed until the store fits.
// Serialized by gcMu; concurrent flights just queue behind the sweep.
func (c *Cache) gcDisk() {
	c.gcMu.Lock()
	defer c.gcMu.Unlock()
	type fileInfo struct {
		path  string
		size  int64
		mtime time.Time
	}
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	var files []fileInfo
	var total int64
	for _, de := range entries {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".cstr") {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		files = append(files, fileInfo{filepath.Join(c.dir, de.Name()), info.Size(), info.ModTime()})
		total += info.Size()
	}
	if total <= c.maxDiskBytes {
		return
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	for _, f := range files {
		if total <= c.maxDiskBytes {
			break
		}
		if os.Remove(f.path) == nil {
			total -= f.size
			c.diskEvictions.Add(1)
		}
	}
}

// insertLocked adds a result to the memory LRU, evicting from the back.
// Caller holds c.mu. Re-inserting a resident id keeps the existing entry
// (the key is a content address, so the structures are interchangeable,
// and keeping the old one preserves its built index). Evicting an entry
// whose index was accounted releases its bytes from the gauge.
func (c *Cache) insertLocked(id string, s *core.Structure) {
	if c.maxEntries == 0 {
		return
	}
	if el, ok := c.entries[id]; ok {
		c.lru.MoveToFront(el)
		return
	}
	c.entries[id] = c.lru.PushFront(&entry{id: id, s: s})
	for c.lru.Len() > c.maxEntries {
		back := c.lru.Back()
		c.lru.Remove(back)
		e := back.Value.(*entry)
		delete(c.entries, e.id)
		if e.idxAccounted {
			c.idxBytesTotal -= e.idxBytes
			c.indexBytes.Set(float64(c.idxBytesTotal))
		}
		if e.auxAccounted {
			c.auxBytesTotal -= e.auxBytes
			c.auxBytes.Set(float64(c.auxBytesTotal))
		}
		c.evictions.Add(1)
	}
	c.memEntries.Set(float64(c.lru.Len()))
}
