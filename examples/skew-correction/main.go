// skew-correction demonstrates the clock-synchronization concern Section 4
// raises for cross-processor metrics: per-processor clock skew makes
// receives appear before their sends, and a post-processing pass (in the
// spirit of the controlled logical clock the paper cites) recovers the
// offsets and restores a causally consistent trace whose logical structure
// matches the unskewed original.
package main

import (
	"fmt"
	"log"

	"charmtrace"
)

func main() {
	tr, err := charmtrace.JacobiTrace(charmtrace.DefaultJacobiConfig())
	if err != nil {
		log.Fatal(err)
	}
	orig, err := charmtrace.Extract(tr, charmtrace.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean trace:      %d causal violations, %d phases\n",
		charmtrace.SkewViolations(tr, 1), orig.NumPhases())

	// Skew each processor's clock by a staircase of 700ns per PE — enough
	// to push receives before their sends.
	offsets := make([]charmtrace.Time, tr.NumPE)
	for p := range offsets {
		offsets[p] = charmtrace.Time(p * 700)
	}
	skewed, err := charmtrace.InjectSkew(tr, offsets)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("skewed trace:     %d causal violations (receives before sends)\n",
		charmtrace.SkewViolations(skewed, 1))

	fixed, applied, err := charmtrace.CorrectSkew(skewed, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corrected trace:  %d causal violations; recovered offsets %v\n",
		charmtrace.SkewViolations(fixed, 1), applied)

	s, err := charmtrace.Extract(fixed, charmtrace.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("structure after correction: %d phases (original %d)\n",
		s.NumPhases(), orig.NumPhases())
}
