package resultcache

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"charmtrace/internal/core"
	"charmtrace/internal/trace"
)

// encodeStructure renders one structure to its canonical entry bytes.
func encodeStructure(t *testing.T, s *core.Structure) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := core.EncodeStructure(&buf, s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPeerFillServesWithoutExtraction: a miss whose peer has the entry must
// decode the peer's bytes, never run the extractor, persist the entry to
// disk, and report the peer outcome.
func TestPeerFillServesWithoutExtraction(t *testing.T) {
	tr, digest := testTrace(t)
	opt := core.DefaultOptions()
	want, err := core.Extract(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	entryBytes := encodeStructure(t, want)

	extractions := atomic.Int64{}
	var gotKey, gotDigest string
	c, err := New(Config{
		Dir: t.TempDir(),
		Extract: func(tr *trace.Trace, opt core.Options) (*core.Structure, error) {
			extractions.Add(1)
			return core.Extract(tr, opt)
		},
		PeerFetch: func(ctx context.Context, traceDigest, key string) (io.ReadCloser, error) {
			gotDigest, gotKey = traceDigest, key
			return io.NopCloser(bytes.NewReader(entryBytes)), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, rec := WithOutcomeRecorder(context.Background())
	s, err := c.Get(ctx, digest, tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if extractions.Load() != 0 {
		t.Fatalf("peer fill ran %d extractions, want 0", extractions.Load())
	}
	if rec.Outcome() != OutcomePeer {
		t.Fatalf("outcome = %q, want %q", rec.Outcome(), OutcomePeer)
	}
	if gotDigest != digest || gotKey != KeyID(digest, opt.Fingerprint()) {
		t.Fatalf("peer fetch saw (%s, %s)", gotDigest, gotKey)
	}
	if counter(c.Registry(), "cache.peer_hits") != 1 || counter(c.Registry(), "cache.misses") != 0 {
		t.Fatalf("peer_hits=%d misses=%d", counter(c.Registry(), "cache.peer_hits"), counter(c.Registry(), "cache.misses"))
	}
	// Byte-identical to a locally extracted structure.
	if !bytes.Equal(encodeStructure(t, s), entryBytes) {
		t.Fatal("peer-filled structure is not byte-identical to the source entry")
	}
	// Persisted: the entry file exists and decodes.
	if _, err := os.Stat(c.DiskPath(digest, opt)); err != nil {
		t.Fatalf("peer-filled entry not persisted: %v", err)
	}
}

// TestPeerFillRejectsGarbageAndExtracts: transport errors, undecodable
// bytes and wrong-fingerprint entries are all peer-fill misses that fall
// back to a correct local extraction.
func TestPeerFillRejectsGarbageAndExtracts(t *testing.T) {
	tr, digest := testTrace(t)
	opt := core.DefaultOptions()
	mpOpt := core.MessagePassingOptions()
	wrongFP, err := core.Extract(tr, mpOpt)
	if err != nil {
		t.Fatal(err)
	}
	wrongBytes := encodeStructure(t, wrongFP)

	cases := map[string]func(ctx context.Context, d, k string) (io.ReadCloser, error){
		"transport error": func(ctx context.Context, d, k string) (io.ReadCloser, error) {
			return nil, errors.New("peer down")
		},
		"garbage bytes": func(ctx context.Context, d, k string) (io.ReadCloser, error) {
			return io.NopCloser(strings.NewReader("CSTRgarbage")), nil
		},
		"wrong fingerprint": func(ctx context.Context, d, k string) (io.ReadCloser, error) {
			return io.NopCloser(bytes.NewReader(wrongBytes)), nil
		},
	}
	for name, fetch := range cases {
		t.Run(name, func(t *testing.T) {
			c, err := New(Config{Dir: t.TempDir(), PeerFetch: fetch})
			if err != nil {
				t.Fatal(err)
			}
			s, err := c.Get(context.Background(), digest, tr, opt)
			if err != nil {
				t.Fatal(err)
			}
			if s == nil {
				t.Fatal("no structure")
			}
			if counter(c.Registry(), "cache.peer_misses") != 1 {
				t.Fatalf("peer_misses = %d, want 1", counter(c.Registry(), "cache.peer_misses"))
			}
			if counter(c.Registry(), "cache.misses") != 1 {
				t.Fatalf("misses = %d, want 1 (must have extracted)", counter(c.Registry(), "cache.misses"))
			}
		})
	}
}

// TestPutEntryOpenEntryRoundTrip: a replicated entry write is readable
// back byte-for-byte, and bad writes are rejected before touching disk.
func TestPutEntryOpenEntryRoundTrip(t *testing.T) {
	tr, digest := testTrace(t)
	opt := core.DefaultOptions()
	s, err := core.Extract(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	entry := encodeStructure(t, s)
	key := KeyID(digest, opt.Fingerprint())

	c, err := New(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	n, err := c.PutEntry(key, bytes.NewReader(entry), 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(entry)) {
		t.Fatalf("PutEntry wrote %d bytes, want %d", n, len(entry))
	}
	rc, size, err := c.OpenEntry(key)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if size != int64(len(entry)) {
		t.Fatalf("OpenEntry size %d, want %d", size, len(entry))
	}
	back, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, entry) {
		t.Fatal("entry bytes changed through Put/Open round trip")
	}
	// A replicated entry must satisfy the normal disk-hit path.
	s2, err := c.Get(context.Background(), digest, tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeStructure(t, s2), entry) {
		t.Fatal("replicated entry did not serve byte-identical structure")
	}
	if counter(c.Registry(), "cache.disk_hits") != 1 || counter(c.Registry(), "cache.misses") != 0 {
		t.Fatal("replicated entry should have been a disk hit")
	}

	if _, err := c.PutEntry("not-a-key", bytes.NewReader(entry), 0); err == nil {
		t.Fatal("invalid key accepted")
	}
	if _, err := c.PutEntry(key, strings.NewReader("JUNKjunkjunk"), 0); err == nil {
		t.Fatal("wrong magic accepted")
	}
	if _, err := c.PutEntry(key, bytes.NewReader(entry), 16); err == nil {
		t.Fatal("oversized entry accepted past limit")
	}
	if _, _, err := c.OpenEntry("missing0000000000000000000000000000000000000000000000000000000000"); !errors.Is(err, ErrNoEntry) {
		t.Fatalf("missing entry error = %v, want ErrNoEntry", err)
	}
}

// TestDiskGCRacingPeerStream is the satellite race test: a reader streaming
// an entry (the internal endpoint's zero-copy path) while the disk GC
// concurrently evicts it must always see either full, valid entry bytes or
// a clean ErrNoEntry — never a truncated stream or a crash. Run under
// -race in the tier-1 leg.
func TestDiskGCRacingPeerStream(t *testing.T) {
	tr, digest := testTrace(t)
	opt := core.DefaultOptions()
	s, err := core.Extract(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	entry := encodeStructure(t, s)
	dir := t.TempDir()
	// A bound small enough that every new write forces an eviction sweep.
	c, err := New(Config{Dir: dir, MaxDiskBytes: int64(len(entry)) * 2})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 8)
	for i := range keys {
		keys[i] = KeyID(fmt.Sprintf("%s-%d", digest, i), opt.Fingerprint())
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writers: keep churning entries so the GC constantly evicts.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := keys[(i+w)%len(keys)]
				if _, err := c.PutEntry(k, bytes.NewReader(entry), 0); err != nil {
					t.Errorf("PutEntry: %v", err)
					return
				}
			}
		}(w)
	}
	// Readers: stream whatever is resident; every successful open must
	// yield the full entry even if GC unlinks the file mid-read.
	var served, fellBack atomic.Int64
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := keys[(i+r)%len(keys)]
				rc, size, err := c.OpenEntry(k)
				if err != nil {
					if !errors.Is(err, ErrNoEntry) {
						t.Errorf("OpenEntry: %v", err)
						return
					}
					fellBack.Add(1) // the peer-fill caller would extract here
					continue
				}
				data, err := io.ReadAll(rc)
				rc.Close()
				if err != nil {
					t.Errorf("stream: %v", err)
					return
				}
				if int64(len(data)) != size || !bytes.Equal(data, entry) {
					t.Errorf("streamed %d bytes, want %d intact", len(data), size)
					return
				}
				served.Add(1)
			}
		}(r)
	}
	// Run until the race has provably been exercised from both sides —
	// full entries streamed AND entries evicted — with a deadline backstop.
	deadline := time.After(5 * time.Second)
	for served.Load() < 20 || counter(c.Registry(), "cache.disk_evictions") < 10 {
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			t.Fatalf("race not exercised in time: served=%d evictions=%d",
				served.Load(), counter(c.Registry(), "cache.disk_evictions"))
		default:
			c.gcDisk()
		}
	}
	close(stop)
	wg.Wait()
	// The store must have converged under its bound (no leaked temp files).
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range entries {
		if strings.HasPrefix(de.Name(), ".tmp-") {
			if info, err := de.Info(); err == nil && info.Size() > 0 {
				t.Errorf("leaked temp file %s", de.Name())
			}
		}
	}
}
