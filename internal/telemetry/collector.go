package telemetry

import (
	"sync"
	"time"
)

// laneStride separates the thread-id ranges of concurrent runs: root span k
// gets Chrome-trace tid base k*laneStride, and its worker lanes occupy
// base+1..base+laneStride-1. A batch of concurrent extractions therefore
// renders as disjoint groups of timeline rows.
const laneStride = 1024

// Span is one recorded interval: a pipeline stage, an
// enforce-orderability round, a worker's chunk of a parallel sweep, or an
// ordered phase.
type Span struct {
	ID     SpanID
	Parent SpanID
	Name   string
	// Start is the offset from the collector's epoch; Dur is negative while
	// the span is open.
	Start time.Duration
	Dur   time.Duration
	// TID is the Chrome-trace thread id: the root's lane base plus the
	// span's worker lane (spans without an explicit lane inherit the
	// parent's TID).
	TID   int64
	Attrs []Attr
}

// Collector is the recording Recorder: it retains every span (with
// monotonic timestamps relative to its creation) for export as a Chrome
// trace-event file. Safe for concurrent use.
type Collector struct {
	t0    time.Time
	mu    sync.Mutex
	spans []Span
	roots int64
}

// NewCollector returns a Collector whose epoch is now.
func NewCollector() *Collector { return &Collector{t0: time.Now()} }

// Enabled reports true: the collector records.
func (c *Collector) Enabled() bool { return true }

// StartSpan records a span opening. The reserved Lane attribute, if
// present, selects the worker lane; other attributes are retained verbatim.
func (c *Collector) StartSpan(name string, parent SpanID, attrs ...Attr) SpanID {
	start := time.Since(c.t0)
	lane := int64(-1)
	kept := attrs
	for i, a := range attrs {
		if a.Key == laneKey {
			lane = a.Int
			// attrs has a fresh backing array per variadic call site, so
			// dropping the lane in place is safe.
			kept = append(attrs[:i], attrs[i+1:]...)
			break
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	var base int64
	switch {
	case parent >= 0 && int(parent) < len(c.spans):
		base = c.spans[parent].TID - c.spans[parent].TID%laneStride
	default:
		parent = NoSpan
		base = c.roots * laneStride
		c.roots++
	}
	tid := base
	switch {
	case lane >= 0:
		if lane >= laneStride {
			lane = laneStride - 1
		}
		tid = base + lane
	case parent != NoSpan:
		tid = c.spans[parent].TID
	}
	id := SpanID(len(c.spans))
	c.spans = append(c.spans, Span{
		ID: id, Parent: parent, Name: name,
		Start: start, Dur: -1, TID: tid, Attrs: kept,
	})
	return id
}

// EndSpan records a span closing. Unknown and NoSpan ids are ignored.
func (c *Collector) EndSpan(id SpanID) {
	end := time.Since(c.t0)
	c.mu.Lock()
	if id >= 0 && int(id) < len(c.spans) && c.spans[id].Dur < 0 {
		c.spans[id].Dur = end - c.spans[id].Start
	}
	c.mu.Unlock()
}

// Spans returns a copy of every recorded span. Spans still open are
// reported as ending now, so an export mid-run stays well-formed.
func (c *Collector) Spans() []Span {
	now := time.Since(c.t0)
	c.mu.Lock()
	out := make([]Span, len(c.spans))
	copy(out, c.spans)
	c.mu.Unlock()
	for i := range out {
		if out[i].Dur < 0 {
			out[i].Dur = now - out[i].Start
		}
	}
	return out
}
