package charmtrace

import (
	"bytes"
	"strings"
	"testing"
)

// TestPublicWindowAndProfile drives WindowTrace and BuildProfile through
// the public API.
func TestPublicWindowAndProfile(t *testing.T) {
	tr, err := JacobiTrace(DefaultJacobiConfig())
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := tr.Span()
	mid := lo + (hi-lo)/2
	win, err := WindowTrace(tr, lo, mid)
	if err != nil {
		t.Fatalf("WindowTrace: %v", err)
	}
	if len(win.Blocks) == 0 || len(win.Blocks) >= len(tr.Blocks) {
		t.Fatalf("window blocks = %d of %d", len(win.Blocks), len(tr.Blocks))
	}
	p := BuildProfile(win)
	if len(p.Entries) == 0 {
		t.Fatal("empty profile")
	}
	if !strings.Contains(p.String(), "jacobi") {
		t.Fatal("profile missing entry names")
	}
	// The windowed trace still extracts.
	s, err := Extract(win, DefaultOptions())
	if err != nil {
		t.Fatalf("Extract on window: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPublicSkewWorkflow drives skew injection and correction through the
// public API.
func TestPublicSkewWorkflow(t *testing.T) {
	tr, err := JacobiTrace(DefaultJacobiConfig())
	if err != nil {
		t.Fatal(err)
	}
	offsets := make([]Time, tr.NumPE)
	for p := range offsets {
		offsets[p] = Time(p * 800)
	}
	skewed, err := InjectSkew(tr, offsets)
	if err != nil {
		t.Fatal(err)
	}
	if SkewViolations(skewed, 1) == 0 {
		t.Fatal("no violations injected")
	}
	fixed, applied, err := CorrectSkew(skewed, 1)
	if err != nil {
		t.Fatal(err)
	}
	if SkewViolations(fixed, 1) != 0 {
		t.Fatal("violations remain after correction")
	}
	if len(applied) != tr.NumPE {
		t.Fatal("offsets wrong length")
	}
}

// TestPublicCompareStructures drives the diff through the public API.
func TestPublicCompareStructures(t *testing.T) {
	cfg := DefaultJacobiConfig()
	trA, err := JacobiTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 7
	trB, err := JacobiTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Extract(trA, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Extract(trB, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	d, err := CompareStructures(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Fatalf("seed change broke logical equivalence:\n%s", d)
	}
}

// TestPublicBinaryFormat drives the binary writer through the public API.
func TestPublicBinaryFormat(t *testing.T) {
	tr, err := JacobiTrace(DefaultJacobiConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTraceBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf) // auto-detects binary
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatal("binary round trip via public API changed the trace")
	}
}
