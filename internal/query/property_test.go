package query

import (
	"context"
	"errors"
	"strings"
	"testing"

	"charmtrace/internal/cli"
	"charmtrace/internal/core"
)

// TestPagingConsistencyAcrossWorkloadsAndParallelism is the acceptance
// property: for every proxy-app trace, at extraction parallelism 1, 2 and
// 4, (a) a filtered query equals the corresponding slice of the full
// result, (b) concatenating all pages of that filtered query reproduces it
// byte-for-byte, and (c) the result bytes are identical at every
// parallelism (the PR1 determinism guarantee carried through the query
// layer).
func TestPagingConsistencyAcrossWorkloadsAndParallelism(t *testing.T) {
	for _, name := range cli.Names() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			tr, opt, err := cli.Generate(name, cli.Params{})
			if err != nil {
				t.Fatal(err)
			}
			var perPar [][]byte
			for _, par := range []int{1, 2, 4} {
				o := opt
				o.Parallelism = par
				s, err := core.Extract(tr, o)
				if err != nil {
					t.Fatal(err)
				}
				idx := BuildIndex(s)
				perPar = append(perPar, checkWorkload(t, idx, par))
			}
			for i := 1; i < len(perPar); i++ {
				if string(perPar[i]) != string(perPar[0]) {
					t.Fatalf("query results differ between parallelism 1 and %d", []int{1, 2, 4}[i])
				}
			}
		})
	}
}

// checkWorkload runs the filtered/paged consistency checks against one
// index and returns a digest of every full result for the cross-
// parallelism comparison.
func checkWorkload(t *testing.T, idx *Index, par int) []byte {
	t.Helper()
	s := idx.S
	maxStep := s.MaxStep()
	nChares := len(s.Trace.Chares)
	nPhases := s.NumPhases()

	// A mid-trace window plus a scattering of chares and phases; every
	// workload has maxStep >= 0 and at least one chare and phase.
	window := &StepRange{From: maxStep / 4, To: maxStep / 2}
	if window.To < window.From {
		window.To = window.From
	}
	chares := []int32{0, int32(nChares / 2), int32(nChares - 1)}
	phases := []int32{0, int32(nPhases / 2)}

	var all []byte
	for _, tc := range []struct {
		name   string
		spec   Spec
		limits []int
	}{
		{"structure-window", Spec{Select: SelectStructure, Filter: Filter{Steps: window}}, []int{1, 3}},
		{"steps-chares", Spec{Select: SelectSteps, Filter: Filter{Chares: chares, Steps: window}}, []int{5}},
		{"steps-phases", Spec{Select: SelectSteps, Filter: Filter{Phases: phases}}, []int{7}},
		{"metrics-window", Spec{Select: SelectMetrics, Filter: Filter{Steps: window}}, []int{4}},
		{"metrics-grouped", Spec{Select: SelectMetrics, GroupBy: GroupByChare, Filter: Filter{Steps: window}}, []int{3}},
		{"viz-window", Spec{Select: SelectViz, Filter: Filter{Steps: window}}, []int{2}},
	} {
		full := mustRun(t, idx, tc.spec)
		fullJSON := rowsJSON(t, full.Rows)
		all = append(all, fullJSON...)

		// (a) Filtered results are the matching slice of the unfiltered
		// row list (row identity, not just counts).
		if tc.spec.Select == SelectSteps || tc.spec.Select == SelectMetrics && tc.spec.GroupBy == "" {
			unfiltered := mustRun(t, idx, Spec{Select: tc.spec.Select})
			if got, want := fullJSON, rowsJSON(t, naiveFilter(unfiltered.Rows, tc.spec.Filter)); got != want {
				t.Errorf("par=%d %s: filtered result is not the naive slice of the full table", par, tc.name)
			}
		}

		// (b) Page concatenation reproduces the unpaged result exactly.
		for _, limit := range tc.limits {
			spec := tc.spec
			spec.Limit = limit
			pages := []map[string]any{}
			for {
				res := mustRun(t, idx, spec)
				if res.TotalRows != full.TotalRows {
					t.Fatalf("par=%d %s limit=%d: TotalRows drifted between pages", par, tc.name, limit)
				}
				pages = append(pages, res.Rows...)
				if res.NextCursor == "" {
					break
				}
				spec.Cursor = res.NextCursor
			}
			if rowsJSON(t, pages) != fullJSON {
				t.Errorf("par=%d %s limit=%d: concatenated pages != unpaged result", par, tc.name, limit)
			}
		}
	}
	return all
}

// naiveFilter reimplements the filter semantics row-by-row over
// materialized rows, independently of the index structures.
func naiveFilter(rows []map[string]any, f Filter) []map[string]any {
	phases := toSet(f.Phases)
	chares := toSet(f.Chares)
	out := []map[string]any{}
	for _, row := range rows {
		if phases != nil && !phases[row["phase"].(int32)] {
			continue
		}
		if chares != nil && !chares[row["chare"].(int32)] {
			continue
		}
		if f.Steps != nil {
			st := row["step"].(int32)
			if st < f.Steps.From || st > f.Steps.To {
				continue
			}
		}
		out = append(out, row)
	}
	return out
}

// TestMalformedSpecsNeverPanic fuzzes the validation surface with a pile
// of hostile specs: every one must come back as a *Error (client error),
// never a panic and never success-with-garbage.
func TestMalformedSpecsNeverPanic(t *testing.T) {
	idx := jacobiIndex(t)
	bad := []string{
		`{}`,
		`{"select":"everything"}`,
		`{"select":"steps","limit":-4}`,
		`{"select":"steps","filter":{"steps":{"from":10,"to":3}}}`,
		`{"select":"steps","filter":{"phases":[1e9]}}`,
		`{"select":"metrics","group_by":"pe"}`,
		`{"select":"metrics","group_by":"phase","aggregates":["p99"]}`,
		`{"select":"viz","fields":["imbalance"]}`,
		`{"select":"steps","cursor":"bm90IGEgY3Vyc29y"}`,
		`{"select":"steps","unknown_knob":true}`,
		`[1,2,3]`,
		`"steps"`,
	}
	for _, body := range bad {
		spec, err := ParseSpec(strings.NewReader(body))
		if err == nil {
			if _, err = Run(context.Background(), idx, spec); err == nil {
				t.Errorf("hostile spec %s was accepted end-to-end", body)
				continue
			}
		}
		var qe *Error
		if !errors.As(err, &qe) {
			t.Errorf("hostile spec %s produced %T (%v), want *query.Error", body, err, err)
		}
	}
}
