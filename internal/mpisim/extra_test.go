package mpisim

import (
	"testing"

	"charmtrace/internal/trace"
)

func TestRecvAnyArrivalOrder(t *testing.T) {
	// Rank 2 receives from 0 and 1 via RecvAny; with jitter disabled, rank
	// 1's later send arrives later, so arrival order is 0 then 1.
	cfg := DefaultConfig(3)
	cfg.Jitter = 0
	var order []int
	MustRun(cfg, func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(2, 7, "from0")
		case 1:
			r.Compute(5000)
			r.Send(2, 7, "from1")
		case 2:
			for i := 0; i < 2; i++ {
				from, tag, _ := r.RecvAny(7)
				if tag != 7 {
					t.Errorf("tag = %d", tag)
				}
				order = append(order, from)
			}
		}
	})
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("RecvAny order = %v, want [0 1] (arrival order)", order)
	}
}

func TestRecvAnyFiltersTags(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Jitter = 0
	var got []int
	MustRun(cfg, func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 5, nil) // not accepted first
			r.Compute(100)
			r.Send(1, 9, nil)
		case 1:
			_, tag, _ := r.RecvAny(9)
			got = append(got, tag)
			_, tag, _ = r.RecvAny(5, 9)
			got = append(got, tag)
		}
	})
	if len(got) != 2 || got[0] != 9 || got[1] != 5 {
		t.Fatalf("tags = %v, want [9 5]", got)
	}
}

func TestRecvAnyPanicsWithoutTags(t *testing.T) {
	_, err := Run(DefaultConfig(1), func(r *Rank) {
		r.RecvAny()
	})
	if err == nil {
		t.Fatal("RecvAny() without tags should fail the run")
	}
}

func TestBarrierGatesAllRanks(t *testing.T) {
	after := make([]Time, 4)
	MustRun(DefaultConfig(4), func(r *Rank) {
		r.Compute(Time(1000 * (r.ID() + 1)))
		r.Barrier()
		after[r.ID()] = r.Now()
	})
	// Everyone leaves the barrier after the slowest (4000ns) joined.
	for i, tm := range after {
		if tm < 4000 {
			t.Fatalf("rank %d left barrier at %d, before slowest join", i, tm)
		}
	}
}

func TestOps(t *testing.T) {
	cases := []struct {
		op   Op
		want float64
	}{{Sum, 6}, {Max, 3}, {Min, 1}}
	for _, c := range cases {
		var got float64
		MustRun(DefaultConfig(3), func(r *Rank) {
			got = r.Allreduce(float64(r.ID()+1), c.op)
		})
		if got != c.want {
			t.Fatalf("op %d = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestSendOutOfRangePanicsRun(t *testing.T) {
	_, err := Run(DefaultConfig(1), func(r *Rank) {
		r.Send(5, 0, nil)
	})
	if err == nil {
		t.Fatal("out-of-range Send should fail the run")
	}
}

func TestNegativeComputeFailsRun(t *testing.T) {
	_, err := Run(DefaultConfig(1), func(r *Rank) {
		r.Compute(-1)
	})
	if err == nil {
		t.Fatal("negative Compute should fail the run")
	}
}

func TestZeroProcsRejected(t *testing.T) {
	if _, err := Run(Config{}, func(r *Rank) {}); err == nil {
		t.Fatal("zero procs accepted")
	}
}

func TestRecvAnyTraceRecordsMatch(t *testing.T) {
	cfg := DefaultConfig(2)
	tr := MustRun(cfg, func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 3, nil)
		case 1:
			r.RecvAny(3)
		}
	})
	if tr.CountKind(trace.Recv) != 1 || tr.CountKind(trace.Send) != 1 {
		t.Fatal("RecvAny did not record events")
	}
	recv := tr.Events[1]
	if recv.Kind == trace.Recv {
		send := tr.SendOf(recv.Msg)
		if tr.Events[send].Time >= recv.Time {
			t.Fatal("recv not after send")
		}
	}
}
