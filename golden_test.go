package charmtrace

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// phasePattern renders the recovered phase sequence compactly: 'a'/'R' for
// application/runtime phases in offset order, runs of concurrent same-kind
// phases collapsed with a multiplicity.
func phasePattern(s *Structure) string {
	order := make([]int32, len(s.Phases))
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		if s.Phases[order[i]].Offset != s.Phases[order[j]].Offset {
			return s.Phases[order[i]].Offset < s.Phases[order[j]].Offset
		}
		return order[i] < order[j]
	})
	var parts []string
	for i := 0; i < len(order); {
		j := i
		for j < len(order) &&
			s.Phases[order[j]].Offset == s.Phases[order[i]].Offset &&
			s.Phases[order[j]].Runtime == s.Phases[order[i]].Runtime {
			j++
		}
		sym := "a"
		if s.Phases[order[i]].Runtime {
			sym = "R"
		}
		if n := j - i; n > 1 {
			sym = fmt.Sprintf("%s*%d", sym, n)
		}
		parts = append(parts, sym)
		i = j
	}
	return strings.Join(parts, " ")
}

// TestGoldenStructures locks the recovered structure of every workload:
// any algorithm change that shifts phase counts, kinds, order or the global
// step extent shows up here. The simulators are deterministic, so these are
// exact.
func TestGoldenStructures(t *testing.T) {
	cases := []struct {
		name        string
		gen         func() (*Trace, error)
		opt         Options
		wantPattern string
		wantPhases  int
		wantMaxStep int32
	}{
		{
			name:        "jacobi-16",
			gen:         func() (*Trace, error) { return JacobiTrace(DefaultJacobiConfig()) },
			opt:         DefaultOptions(),
			wantPattern: "a R a R a R a R",
			wantPhases:  8,
			wantMaxStep: 107,
		},
		{
			name:        "lulesh-charm-8",
			gen:         func() (*Trace, error) { return LuleshCharmTrace(DefaultLuleshConfig()) },
			opt:         DefaultOptions(),
			wantPattern: "a R a a R a a R a a R a a R",
			wantPhases:  14,
			wantMaxStep: 120,
		},
		{
			name:        "lulesh-mpi-8",
			gen:         func() (*Trace, error) { return LuleshMPITrace(DefaultLuleshConfig()) },
			opt:         MessagePassingOptions(),
			wantPattern: "a a a a a a a a a a a a a a a a a a",
			wantPhases:  18,
			wantMaxStep: 87,
		},
		{
			name:        "lassen-charm-8",
			gen:         func() (*Trace, error) { return LassenCharmTrace(DefaultLassenConfig()) },
			opt:         DefaultOptions(),
			wantPattern: "a a*8 R a a*8 R a a*8 R a a*8 R a a*8 R a a*8 R",
			wantPhases:  60,
			wantMaxStep: 143,
		},
		{
			name:        "lassen-mpi-8",
			gen:         func() (*Trace, error) { return LassenMPITrace(DefaultLassenConfig()) },
			opt:         MessagePassingOptions(),
			wantPattern: "a a a a a a a a a a a a",
			wantPhases:  12,
			wantMaxStep: 47,
		},
		{
			name:        "nasbt-9",
			gen:         func() (*Trace, error) { return NASBTTrace(DefaultNASBTConfig()) },
			opt:         MessagePassingOptions(),
			wantPattern: "a*3 a*4 a*3 a*2 a a*3 a*4 a*3 a*2 a a*3 a*4 a*3 a*2 a",
			wantPhases:  39,
			wantMaxStep: 47,
		},
		{
			name:        "pdes-16",
			gen:         func() (*Trace, error) { return PDESTrace(DefaultPDESConfig()) },
			opt:         DefaultOptions(),
			wantPattern: "a*2",
			wantPhases:  2,
			wantMaxStep: 21,
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			tr, err := c.gen()
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			s, err := Extract(tr, c.opt)
			if err != nil {
				t.Fatalf("Extract: %v", err)
			}
			if got := phasePattern(s); got != c.wantPattern {
				t.Errorf("pattern = %q, want %q", got, c.wantPattern)
			}
			if got := s.NumPhases(); got != c.wantPhases {
				t.Errorf("phases = %d, want %d", got, c.wantPhases)
			}
			if got := s.MaxStep(); got != c.wantMaxStep {
				t.Errorf("max step = %d, want %d", got, c.wantMaxStep)
			}
		})
	}
}
