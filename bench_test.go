// Benchmarks regenerating the paper's evaluation: one benchmark per figure,
// measuring the logical-structure extraction (and, where the figure is
// about metrics, the metric computation) over the corresponding workload.
// The workload traces are generated once per benchmark; the measured loop
// is the analysis the paper times (Figures 18 and 19 report exactly this
// extraction time).
//
// Run everything with:
//
//	go test -bench=. -benchmem
package charmtrace

import (
	"fmt"
	"runtime"
	"testing"

	"charmtrace/internal/apps/jacobi"
	"charmtrace/internal/apps/lassen"
	"charmtrace/internal/apps/lulesh"
	"charmtrace/internal/apps/mergetree"
	"charmtrace/internal/apps/nasbt"
	"charmtrace/internal/apps/pdes"
	"charmtrace/internal/core"
	"charmtrace/internal/metrics"
	"charmtrace/internal/telemetry"
	"charmtrace/internal/trace"
)

// benchExtract measures Extract over a fixed trace.
func benchExtract(b *testing.B, tr *trace.Trace, opt core.Options) {
	b.Helper()
	b.ReportMetric(float64(len(tr.Events)), "events")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Extract(tr, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig01NASBT: structure extraction for the Figure 1 context trace.
func BenchmarkFig01NASBT(b *testing.B) {
	tr := nasbt.MustTrace(nasbt.DefaultConfig())
	benchExtract(b, tr, core.MessagePassingOptions())
}

// BenchmarkFig08JacobiReordering: Jacobi 2D 64 chares / 8 PEs, with and
// without the §3.2.1 reordering.
func BenchmarkFig08JacobiReordering(b *testing.B) {
	cfg := jacobi.DefaultConfig()
	cfg.Grid = 8
	cfg.Iterations = 2
	tr := jacobi.MustTrace(cfg)
	b.Run("reordered", func(b *testing.B) { benchExtract(b, tr, core.DefaultOptions()) })
	b.Run("recorded", func(b *testing.B) {
		opt := core.DefaultOptions()
		opt.Reorder = false
		benchExtract(b, tr, opt)
	})
}

// BenchmarkFig10MergeTree: the 1,024-process MPI merge tree with
// data-dependent imbalance, stepped with and without reordering, then the
// same extraction across worker counts (output is byte-identical across
// par=N; the series measures the wall-clock effect of Options.Parallelism
// on the paper's largest workload).
func BenchmarkFig10MergeTree(b *testing.B) {
	cfg := mergetree.DefaultConfig()
	tr := mergetree.MustTrace(cfg)
	b.Run("reordered", func(b *testing.B) { benchExtract(b, tr, core.MessagePassingOptions()) })
	b.Run("recorded", func(b *testing.B) {
		opt := core.MessagePassingOptions()
		opt.Reorder = false
		benchExtract(b, tr, opt)
	})
	for _, par := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		par := par
		b.Run(fmt.Sprintf("reordered-par=%d", par), func(b *testing.B) {
			opt := core.MessagePassingOptions()
			opt.Parallelism = par
			benchExtract(b, tr, opt)
		})
	}
}

// BenchmarkExtractBatch: the concurrent batch API against the equivalent
// serial loop, over eight seed variations of the Jacobi workload (the
// multi-run comparison shape of cmd/experiments and examples/lulesh-compare).
func BenchmarkExtractBatch(b *testing.B) {
	traces := make([]*trace.Trace, 8)
	for i := range traces {
		cfg := jacobi.DefaultConfig()
		cfg.Grid = 8
		cfg.Seed = int64(i + 1)
		traces[i] = jacobi.MustTrace(cfg)
	}
	opt := core.DefaultOptions()
	b.Run("serial-loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, tr := range traces {
				if _, err := core.Extract(tr, opt); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.ExtractBatch(traces, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTelemetryOverhead quantifies what the telemetry subsystem costs
// the Figure 10 merge-tree extraction in its three states: off (Options
// zero value), nop (the Disabled recorder explicitly attached — the guard
// DESIGN.md promises stays under 2% of the off case), and recording (a live
// span collector plus metrics registry, the -self-trace/-stats-json
// configuration). Compare ns/op across the off/nop pairs at each worker
// count.
func BenchmarkTelemetryOverhead(b *testing.B) {
	tr := mergetree.MustTrace(mergetree.DefaultConfig())
	for _, par := range []int{1, 4} {
		par := par
		run := func(name string, configure func(*core.Options)) {
			b.Run(fmt.Sprintf("%s-par=%d", name, par), func(b *testing.B) {
				opt := core.MessagePassingOptions()
				opt.Parallelism = par
				configure(&opt)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := core.Extract(tr, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		run("off", func(*core.Options) {})
		run("nop", func(opt *core.Options) { opt.Telemetry = telemetry.Disabled })
		b.Run(fmt.Sprintf("recording-par=%d", par), func(b *testing.B) {
			opt := core.MessagePassingOptions()
			opt.Parallelism = par
			reg := telemetry.NewRegistry()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// A fresh collector per run, as cmd/structure attaches one.
				opt.Telemetry = telemetry.NewCollector()
				opt.Metrics = reg
				if _, err := core.Extract(tr, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchMetrics measures the Section 4 metric computation over a structure.
func benchMetrics(b *testing.B, tr *trace.Trace, opt core.Options) {
	b.Helper()
	s, err := core.Extract(tr, opt)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.Compute(s)
	}
}

// BenchmarkFig12IdleExperienced: Jacobi 16 chares with a reduction-gating
// slow chare; measures the metric pass of Figure 12.
func BenchmarkFig12IdleExperienced(b *testing.B) {
	cfg := jacobi.DefaultConfig()
	cfg.SlowChare = 0
	benchMetrics(b, jacobi.MustTrace(cfg), core.DefaultOptions())
}

// BenchmarkFig14Fig15SlowChareMetrics: the imbalance / differential
// duration computation of Figures 14 and 15.
func BenchmarkFig14Fig15SlowChareMetrics(b *testing.B) {
	cfg := jacobi.DefaultConfig()
	cfg.SlowChare = 5
	benchMetrics(b, jacobi.MustTrace(cfg), core.DefaultOptions())
}

// BenchmarkFig16LULESH: structure extraction for both LULESH variants.
func BenchmarkFig16LULESH(b *testing.B) {
	cfg := lulesh.DefaultConfig()
	b.Run("mpi", func(b *testing.B) {
		benchExtract(b, lulesh.MustMPITrace(cfg), core.MessagePassingOptions())
	})
	b.Run("charm", func(b *testing.B) {
		benchExtract(b, lulesh.MustCharmTrace(cfg), core.DefaultOptions())
	})
}

// BenchmarkFig17NoInference: the ablation of the §3.1.4 machinery.
func BenchmarkFig17NoInference(b *testing.B) {
	tr := lulesh.MustCharmTrace(lulesh.DefaultConfig())
	opt := core.DefaultOptions()
	opt.InferDependencies = false
	benchExtract(b, tr, opt)
}

// BenchmarkFig18ExtractionVsIterations: Figure 18's series — extraction
// time for a 64-chare LULESH at doubling iteration counts. The figure's
// claim is that time is proportional to iterations; compare ns/op across
// the sub-benchmarks.
func BenchmarkFig18ExtractionVsIterations(b *testing.B) {
	for _, iters := range []int{8, 16, 32, 64} {
		iters := iters
		b.Run(fmt.Sprintf("iters=%d", iters), func(b *testing.B) {
			cfg := lulesh.DefaultConfig()
			cfg.Grid = 4
			cfg.NumPE = 8
			cfg.Iterations = iters
			benchExtract(b, lulesh.MustCharmTrace(cfg), core.DefaultOptions())
		})
	}
}

// BenchmarkFig19ExtractionVsChares: Figure 19's series — extraction time
// for 8-iteration LULESH at growing chare counts. The paper reports
// super-linear growth dominated by the §3.1.4 merge.
func BenchmarkFig19ExtractionVsChares(b *testing.B) {
	for _, grid := range []int{4, 6, 8} {
		grid := grid
		b.Run(fmt.Sprintf("chares=%d", grid*grid*grid), func(b *testing.B) {
			cfg := lulesh.DefaultConfig()
			cfg.Grid = grid
			cfg.NumPE = grid * grid * grid / 8
			cfg.Iterations = 8
			benchExtract(b, lulesh.MustCharmTrace(cfg), core.DefaultOptions())
		})
	}
}

// BenchmarkFig20LASSEN: structure extraction for all four LASSEN traces.
func BenchmarkFig20LASSEN(b *testing.B) {
	coarse, fine := lassen.DefaultConfig(), lassen.FineConfig()
	b.Run("mpi-8", func(b *testing.B) {
		benchExtract(b, lassen.MustMPITrace(coarse), core.MessagePassingOptions())
	})
	b.Run("charm-8", func(b *testing.B) {
		benchExtract(b, lassen.MustCharmTrace(coarse), core.DefaultOptions())
	})
	b.Run("mpi-64", func(b *testing.B) {
		benchExtract(b, lassen.MustMPITrace(fine), core.MessagePassingOptions())
	})
	b.Run("charm-64", func(b *testing.B) {
		benchExtract(b, lassen.MustCharmTrace(fine), core.DefaultOptions())
	})
}

// BenchmarkFig21Fig23LASSENMetrics: the differential-duration/imbalance
// passes behind Figures 21-23.
func BenchmarkFig21Fig23LASSENMetrics(b *testing.B) {
	cfg := lassen.FineConfig()
	cfg.Iterations = 16
	benchMetrics(b, lassen.MustCharmTrace(cfg), core.DefaultOptions())
}

// BenchmarkFig24PDES: extraction including the concurrent-phase detection
// of the Figure 24 analysis.
func BenchmarkFig24PDES(b *testing.B) {
	tr := pdes.MustTrace(pdes.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := core.Extract(tr, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if pairs := s.ConcurrentPhases(); len(pairs) == 0 {
			b.Fatal("expected concurrent phases")
		}
	}
}

// BenchmarkSec5ReductionTracing: extraction cost with and without the §5
// tracing additions (the additions add events, so both trace size and
// analysis cost move).
func BenchmarkSec5ReductionTracing(b *testing.B) {
	cfg := jacobi.DefaultConfig()
	with := jacobi.MustTrace(cfg)
	cfg.TraceReductions = false
	without := jacobi.MustTrace(cfg)
	b.Run("with", func(b *testing.B) { benchExtract(b, with, core.DefaultOptions()) })
	b.Run("without", func(b *testing.B) { benchExtract(b, without, core.DefaultOptions()) })
}

// Ablation benchmarks for the design choices DESIGN.md calls out.

// BenchmarkAblationTieBreak compares the Figure 7 invoking-chare tie-break
// against plain physical-time ordering (Reorder off) on a jittered Jacobi.
func BenchmarkAblationTieBreak(b *testing.B) {
	cfg := jacobi.DefaultConfig()
	cfg.Grid = 8
	tr := jacobi.MustTrace(cfg)
	b.Run("w-and-invoker", func(b *testing.B) { benchExtract(b, tr, core.DefaultOptions()) })
	b.Run("physical-time", func(b *testing.B) {
		opt := core.DefaultOptions()
		opt.Reorder = false
		benchExtract(b, tr, opt)
	})
}

// BenchmarkAblationNeighborSerialMerge toggles the §3.1.3 neighbouring
// serial merge.
func BenchmarkAblationNeighborSerialMerge(b *testing.B) {
	tr := lulesh.MustCharmTrace(lulesh.DefaultConfig())
	b.Run("on", func(b *testing.B) { benchExtract(b, tr, core.DefaultOptions()) })
	b.Run("off", func(b *testing.B) {
		opt := core.DefaultOptions()
		opt.NeighborSerialMerge = false
		benchExtract(b, tr, opt)
	})
}

// BenchmarkSimulators measures trace generation itself, to separate
// substrate cost from analysis cost.
func BenchmarkSimulators(b *testing.B) {
	b.Run("charm-jacobi", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			jacobi.MustTrace(jacobi.DefaultConfig())
		}
	})
	b.Run("mpi-lulesh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lulesh.MustMPITrace(lulesh.DefaultConfig())
		}
	})
	b.Run("mpi-mergetree-256", func(b *testing.B) {
		cfg := mergetree.DefaultConfig()
		cfg.Procs = 256
		for i := 0; i < b.N; i++ {
			mergetree.MustTrace(cfg)
		}
	})
}
