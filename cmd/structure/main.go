// Command structure recovers and displays the logical structure of a trace.
//
// Usage:
//
//	structure -in jacobi.trace                 # from a trace file
//	structure -app lulesh -render logical      # generate and analyze
//	structure -app lassen -render physical
//	structure -app jacobi -svg out.svg
//	structure -app lulesh -no-infer            # the Figure 17 ablation
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"charmtrace/internal/charegroup"
	"charmtrace/internal/cli"
	"charmtrace/internal/core"
	"charmtrace/internal/trace"
	"charmtrace/internal/tracefile"
	"charmtrace/internal/viz"
)

// looksMessagePassing reports whether a trace has the process-centric
// shape of §3.4: no runtime chares and at most one dependency event per
// serial block.
func looksMessagePassing(tr *trace.Trace) bool {
	for i := range tr.Chares {
		if tr.Chares[i].Runtime {
			return false
		}
	}
	for i := range tr.Blocks {
		if len(tr.Blocks[i].Events) > 1 {
			return false
		}
	}
	return len(tr.Blocks) > 0
}

func main() {
	in := flag.String("in", "", "input trace file")
	app := flag.String("app", "", "generate this workload instead of reading a file")
	mp := flag.Bool("mp", false, "treat a file input as a message-passing trace")
	noReorder := flag.Bool("no-reorder", false, "step events in recorded order (disable §3.2.1)")
	noInfer := flag.Bool("no-infer", false, "disable §3.1.4 dependency inference (Figure 17)")
	render := flag.String("render", "summary", "output: summary | logical | clustered | physical | both")
	svg := flag.String("svg", "", "also write an SVG rendering to this file")
	iters := flag.Int("iters", 0, "iteration override for -app")
	scale := flag.Int("scale", 0, "size override for -app")
	seed := flag.Int64("seed", 0, "seed override for -app")
	from := flag.Int64("from", -1, "analyze only blocks within [from, to) virtual ns")
	to := flag.Int64("to", -1, "window end (see -from)")
	timing := flag.Bool("timing", false, "print per-stage extraction wall times")
	parallelism := flag.Int("parallelism", 0, "extraction worker count (0 = all cores, 1 = sequential; output is identical)")
	tele := cli.NewTelemetry("structure", flag.CommandLine)
	flag.Parse()
	if err := tele.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "structure:", err)
		os.Exit(1)
	}

	var tr *trace.Trace
	var opt core.Options
	var err error
	switch {
	case *app != "":
		tr, opt, err = cli.Generate(*app, cli.Params{Iterations: *iters, Scale: *scale, Seed: *seed})
	case *in != "":
		tr, err = tracefile.ReadFile(*in)
		opt = core.DefaultOptions()
		if *mp || (err == nil && looksMessagePassing(tr)) {
			if !*mp {
				fmt.Println("(detected a message-passing trace: single-event blocks, no runtime chares)")
			}
			opt = core.MessagePassingOptions()
		}
	default:
		err = fmt.Errorf("need -in <file> or -app <workload>; workloads:\n%s", cli.Describe())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "structure:", err)
		os.Exit(1)
	}
	opt.Reorder = !*noReorder
	if *noInfer {
		opt.InferDependencies = false
	}
	opt.Parallelism = *parallelism
	if *app != "" {
		tele.Label("workload", *app)
	} else {
		tele.Label("input", *in)
	}
	tele.Apply(&opt)
	if *from >= 0 || *to >= 0 {
		lo, hi := tr.Span()
		f, tt := lo, hi+1
		if *from >= 0 {
			f = trace.Time(*from)
		}
		if *to >= 0 {
			tt = trace.Time(*to)
		}
		tr, err = trace.Window(tr, f, tt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "structure:", err)
			os.Exit(1)
		}
		fmt.Printf("window [%d, %d): %d blocks, %d events\n", f, tt, len(tr.Blocks), len(tr.Events))
	}

	// Ctrl-C cancels the extraction cooperatively instead of leaving a
	// half-printed analysis; a second signal kills the process.
	ctx, stopSignals := cli.SignalContext(context.Background())
	opt.Context = ctx
	s, err := core.Extract(tr, opt)
	stopSignals()
	if err != nil {
		fmt.Fprintln(os.Stderr, "structure:", err)
		os.Exit(1)
	}
	if err := s.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "structure: invariant violation:", err)
		os.Exit(1)
	}

	fmt.Printf("events: %d   phases: %d   global steps: 0..%d\n",
		len(tr.Events), s.NumPhases(), s.MaxStep())
	fmt.Printf("initial partitions: %d   enforce rounds: %d\n\n",
		s.Stats.InitialPartitions, s.Stats.EnforceRounds)
	if *timing {
		fmt.Print(s.Stats.TimingReport())
		fmt.Println()
	}
	switch *render {
	case "summary":
		fmt.Print(viz.PhaseSummary(s))
	case "logical":
		fmt.Print(viz.Logical(s))
	case "clustered":
		clusters := charegroup.Exact(s)
		rows := make([]viz.ClusterRow, len(clusters))
		for i := range clusters {
			rows[i] = viz.ClusterRow{
				Representative: clusters[i].Representative,
				Label:          clusters[i].Label(tr),
			}
		}
		fmt.Print(viz.LogicalClustered(s, rows))
	case "physical":
		fmt.Print(viz.Physical(tr, s, 100))
	case "both":
		fmt.Print(viz.Logical(s))
		fmt.Println()
		fmt.Print(viz.Physical(tr, s, 100))
	default:
		fmt.Fprintf(os.Stderr, "structure: unknown -render %q\n", *render)
		os.Exit(1)
	}
	if *svg != "" {
		if err := os.WriteFile(*svg, []byte(viz.LogicalSVG(s)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "structure:", err)
			os.Exit(1)
		}
		fmt.Printf("\nSVG written to %s\n", *svg)
	}
	if err := tele.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "structure:", err)
		os.Exit(1)
	}
}
