package trace

// Window extracts the sub-trace of blocks lying entirely within [from, to):
// the standard way to analyze a few iterations out of a long run. Receives
// whose matching send fell outside the window are dropped (the dependency
// is unknowable from the window alone), broadcasts keep whichever receives
// survive, and idle spans are clipped to the window. IDs are renumbered
// densely; chares and entries are preserved as-is so indices remain
// comparable with the full trace.
func Window(t *Trace, from, to Time) (*Trace, error) {
	out := &Trace{
		NumPE:   t.NumPE,
		Chares:  append([]Chare(nil), t.Chares...),
		Entries: append([]Entry(nil), t.Entries...),
	}
	// Pass 1: select blocks and remember kept sends.
	keepBlock := make([]bool, len(t.Blocks))
	sendKept := make(map[MsgID]bool)
	for i := range t.Blocks {
		b := &t.Blocks[i]
		if b.Begin >= from && b.End < to {
			keepBlock[i] = true
			for _, e := range b.Events {
				ev := &t.Events[e]
				if ev.Kind == Send && ev.Msg != NoMsg {
					sendKept[ev.Msg] = true
				}
			}
		}
	}
	// Pass 2: rebuild blocks and events with dense IDs.
	newEvent := make(map[EventID]EventID)
	for i := range t.Blocks {
		if !keepBlock[i] {
			continue
		}
		b := t.Blocks[i]
		nb := Block{
			ID: BlockID(len(out.Blocks)), Chare: b.Chare, PE: b.PE,
			Entry: b.Entry, Begin: b.Begin, End: b.End,
		}
		for _, e := range b.Events {
			ev := t.Events[e]
			if ev.Kind == Recv && ev.Msg != NoMsg && !sendKept[ev.Msg] {
				continue // sender outside the window
			}
			ne := ev
			ne.ID = EventID(len(out.Events))
			ne.Block = nb.ID
			newEvent[ev.ID] = ne.ID
			out.Events = append(out.Events, ne)
			nb.Events = append(nb.Events, ne.ID)
		}
		out.Blocks = append(out.Blocks, nb)
	}
	for _, idle := range t.Idles {
		if idle.End <= from || idle.Begin >= to {
			continue
		}
		if idle.Begin < from {
			idle.Begin = from
		}
		if idle.End > to {
			idle.End = to
		}
		out.Idles = append(out.Idles, idle)
	}
	if err := out.Index(); err != nil {
		return nil, err
	}
	return out, nil
}
