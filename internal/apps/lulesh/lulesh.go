// Package lulesh is a communication-skeleton proxy of the LULESH
// hydrodynamics mini-app used in Section 6.1.
//
// The Charm++ variant reproduces the structure of Figure 16(b): a single
// problem-setup phase, then per timestep two point-to-point phases with
// mirrored communication patterns (sends to the plus-direction face
// neighbours, then — after SDAG control that the tracing framework does not
// record — sends to the minus-direction neighbours) followed by a dt
// allreduce. Because every exchange is fired from fine-grained serial
// blocks with unrecorded control between them, the per-exchange partitions
// are disconnected "stars" that only the §3.1.4 inference (Algorithms 3 and
// 4) assembles into whole phases; disabling the inference reproduces
// Figure 17's splitting.
//
// The MPI variant reproduces Figure 16(a): setup, then per timestep three
// exchange phases and an allreduce.
package lulesh

import (
	"charmtrace/internal/mpisim"
	"charmtrace/internal/sim"
	"charmtrace/internal/trace"
)

// Config parameterizes a run.
type Config struct {
	// Grid is the sub-domain grid edge: Grid^3 chares (or ranks).
	Grid int
	// NumPE is the processor count (Charm++ variant; MPI runs one rank per
	// processor).
	NumPE int
	// Iterations is the number of timesteps.
	Iterations int
	// Compute is the per-phase base compute time.
	Compute sim.Time
	// Seed feeds the network jitter.
	Seed int64
	// TraceReductions toggles the §5 additions (Charm++ variant).
	TraceReductions bool
}

// DefaultConfig is the paper's 8-chare (2x2x2) Charm++ run on 2 PEs.
func DefaultConfig() Config {
	return Config{Grid: 2, NumPE: 2, Iterations: 4, Compute: 400, Seed: 1, TraceReductions: true}
}

// plusNeighbors returns the +x/+y/+z face neighbours of sub-domain i.
func plusNeighbors(i, g int) []int {
	x, y, z := i%g, (i/g)%g, i/(g*g)
	var out []int
	if x < g-1 {
		out = append(out, i+1)
	}
	if y < g-1 {
		out = append(out, i+g)
	}
	if z < g-1 {
		out = append(out, i+g*g)
	}
	_ = z
	return out
}

// minusNeighbors returns the -x/-y/-z face neighbours of sub-domain i.
func minusNeighbors(i, g int) []int {
	x, y := i%g, (i/g)%g
	z := i / (g * g)
	var out []int
	if x > 0 {
		out = append(out, i-1)
	}
	if y > 0 {
		out = append(out, i-g)
	}
	if z > 0 {
		out = append(out, i-g*g)
	}
	return out
}

// allNeighbors returns all face neighbours.
func allNeighbors(i, g int) []int {
	return append(plusNeighbors(i, g), minusNeighbors(i, g)...)
}

// state is per-chare simulation state for the Charm++ variant.
type state struct {
	iter        int
	setupGhosts int
	ghost1      int // minus-side messages received this timestep
	ghost2      int // plus-side messages received this timestep
}

// CharmTrace runs the Charm++ variant.
func CharmTrace(cfg Config) (*trace.Trace, error) {
	g := cfg.Grid
	n := g * g * g
	simCfg := sim.DefaultConfig(cfg.NumPE)
	simCfg.Seed = cfg.Seed
	simCfg.TraceReductions = cfg.TraceReductions
	rt := sim.New(simCfg)
	arr := rt.NewArray("lulesh", n, nil, func(i int) any { return &state{} })

	var recvSetup, ghost1, ghost2, mirror, resume sim.EntryRef
	var setupRed, dtRed *sim.Reduction

	// startPlus fires the plus-direction exchange of one timestep; the
	// chare with no minus neighbours (the min corner) proceeds straight to
	// the mirror exchange since it has nothing to wait for.
	startPlus := func(ctx *sim.Ctx) {
		for _, nb := range plusNeighbors(ctx.Index(), g) {
			ctx.Send(arr.At(nb), ghost1, nil)
		}
		if len(minusNeighbors(ctx.Index(), g)) == 0 {
			ctx.SendUntraced(arr.At(ctx.Index()), mirror, nil)
		}
	}
	finishStep := func(ctx *sim.Ctx, st *state) {
		ctx.Compute(cfg.Compute)
		ctx.Contribute(dtRed, 0.01)
	}

	// Setup: one exchange with all neighbours, then a setup reduction.
	begin := arr.Register("init", func(ctx *sim.Ctx, m sim.Message) {
		ctx.Compute(2 * cfg.Compute)
		for _, nb := range allNeighbors(ctx.Index(), g) {
			ctx.Send(arr.At(nb), recvSetup, nil)
		}
	})
	recvSetup = arr.Register("recvSetup", func(ctx *sim.Ctx, m sim.Message) {
		st := ctx.State().(*state)
		st.setupGhosts++
		ctx.Compute(10)
		if st.setupGhosts == len(allNeighbors(ctx.Index(), g)) {
			ctx.Compute(cfg.Compute / 2)
			ctx.Contribute(setupRed, 0)
		}
	})
	// Timestep phase 1: receive a minus-side ghost; when all have arrived,
	// SDAG control (not recorded) starts the mirrored exchange.
	ghost1 = arr.RegisterSDAG("recvPlusGhost", 1, true, func(ctx *sim.Ctx, m sim.Message) {
		st := ctx.State().(*state)
		st.ghost1++
		ctx.Compute(10)
		if st.ghost1 == len(minusNeighbors(ctx.Index(), g)) {
			st.ghost1 = 0
			ctx.SendUntraced(arr.At(ctx.Index()), mirror, nil)
		}
	})
	// The mirrored exchange: compute, then send to the minus neighbours.
	mirror = arr.RegisterSDAG("sendMirror", 2, false, func(ctx *sim.Ctx, m sim.Message) {
		st := ctx.State().(*state)
		ctx.Compute(cfg.Compute)
		for _, nb := range minusNeighbors(ctx.Index(), g) {
			ctx.Send(arr.At(nb), ghost2, nil)
		}
		if len(plusNeighbors(ctx.Index(), g)) == 0 {
			finishStep(ctx, st)
		}
	})
	// Timestep phase 2: receive a plus-side ghost; when all have arrived,
	// compute and contribute to the dt reduction.
	ghost2 = arr.RegisterSDAG("recvMinusGhost", 5, true, func(ctx *sim.Ctx, m sim.Message) {
		st := ctx.State().(*state)
		st.ghost2++
		ctx.Compute(10)
		if st.ghost2 == len(plusNeighbors(ctx.Index(), g)) {
			st.ghost2 = 0
			finishStep(ctx, st)
		}
	})
	resume = arr.RegisterSDAG("resume", 7, true, func(ctx *sim.Ctx, m sim.Message) {
		st := ctx.State().(*state)
		st.iter++
		if st.iter > cfg.Iterations {
			return
		}
		ctx.Compute(cfg.Compute / 4)
		startPlus(ctx)
	})
	setupRed = rt.NewReduction(arr, sim.Sum, sim.BroadcastCallback(resume))
	dtRed = rt.NewReduction(arr, sim.Min, sim.BroadcastCallback(resume))

	for i := 0; i < n; i++ {
		rt.Spawn(arr.At(i), begin, nil)
	}
	return rt.Run()
}

// MustCharmTrace is CharmTrace that panics on error.
func MustCharmTrace(cfg Config) *trace.Trace {
	t, err := CharmTrace(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// MPITrace runs the MPI variant: one rank per sub-domain, a setup exchange
// plus setup allreduce, then per timestep three exchange phases and a dt
// allreduce (Figure 16a).
func MPITrace(cfg Config) (*trace.Trace, error) {
	g := cfg.Grid
	n := g * g * g
	mpiCfg := mpisim.DefaultConfig(n)
	mpiCfg.Seed = cfg.Seed
	exchange := func(r *mpisim.Rank, tag int, nbs []int) {
		for _, nb := range nbs {
			r.Send(nb, tag, nil)
		}
		for _, nb := range nbs {
			r.Recv(nb, tag)
		}
	}
	return mpisim.Run(mpiCfg, func(r *mpisim.Rank) {
		r.Compute(2 * cfg.Compute)
		exchange(r, 0, allNeighbors(r.ID(), g))
		r.Allreduce(0, mpisim.Sum)
		for it := 0; it < cfg.Iterations; it++ {
			for phase := 1; phase <= 3; phase++ {
				r.Compute(cfg.Compute)
				exchange(r, it*3+phase, allNeighbors(r.ID(), g))
			}
			r.Allreduce(0.01, mpisim.Min)
		}
	})
}

// MustMPITrace is MPITrace that panics on error.
func MustMPITrace(cfg Config) *trace.Trace {
	t, err := MPITrace(cfg)
	if err != nil {
		panic(err)
	}
	return t
}
