// Package nasbt is a skeleton of the NAS BT multi-partition benchmark used
// for the paper's motivating Figure 1: a square process grid performs
// pipelined line sweeps along x then y, followed by a cell update exchange,
// per iteration. The sweep pipelines of successive iterations overlap in
// physical time, which makes the raw timeline hard to read; the logical
// structure separates the interleaved phases.
package nasbt

import (
	"charmtrace/internal/mpisim"
	"charmtrace/internal/trace"
)

// Config parameterizes a run.
type Config struct {
	// Grid is the process grid edge: Grid*Grid ranks (the paper's Figure 1
	// trace used 9 processes, a 3x3 grid).
	Grid int
	// Iterations is the number of ADI iterations.
	Iterations int
	// Compute is the per-cell solve time.
	Compute mpisim.Time
	// Seed feeds the network jitter.
	Seed int64
}

// DefaultConfig is the 9-process configuration of Figure 1.
func DefaultConfig() Config {
	return Config{Grid: 3, Iterations: 3, Compute: 300, Seed: 1}
}

// Trace runs the benchmark and returns its event trace.
func Trace(cfg Config) (*trace.Trace, error) {
	g := cfg.Grid
	mpiCfg := mpisim.DefaultConfig(g * g)
	mpiCfg.Seed = cfg.Seed
	return mpisim.Run(mpiCfg, func(r *mpisim.Rank) {
		x, y := r.ID()%g, r.ID()/g
		for it := 0; it < cfg.Iterations; it++ {
			base := it * 4
			// X sweep: a pipeline along each row.
			if x > 0 {
				r.Recv(r.ID()-1, base)
			}
			r.Compute(cfg.Compute)
			if x < g-1 {
				r.Send(r.ID()+1, base, nil)
			}
			// Y sweep: a pipeline along each column.
			if y > 0 {
				r.Recv(r.ID()-g, base+1)
			}
			r.Compute(cfg.Compute)
			if y < g-1 {
				r.Send(r.ID()+g, base+1, nil)
			}
			// Cell update: exchange with the 4-connected neighbours.
			var nbs []int
			if x > 0 {
				nbs = append(nbs, r.ID()-1)
			}
			if x < g-1 {
				nbs = append(nbs, r.ID()+1)
			}
			if y > 0 {
				nbs = append(nbs, r.ID()-g)
			}
			if y < g-1 {
				nbs = append(nbs, r.ID()+g)
			}
			for _, nb := range nbs {
				r.Send(nb, base+2, nil)
			}
			r.Compute(cfg.Compute / 2)
			for _, nb := range nbs {
				r.Recv(nb, base+2)
			}
		}
	})
}

// MustTrace is Trace that panics on error.
func MustTrace(cfg Config) *trace.Trace {
	t, err := Trace(cfg)
	if err != nil {
		panic(err)
	}
	return t
}
