package cli

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"log/slog"
	"strings"
	"testing"
)

func TestLoggingFlagRegistration(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	l := NewLogging("json", fs)
	if err := fs.Parse([]string{"-log-format", "text", "-log-level", "debug"}); err != nil {
		t.Fatal(err)
	}
	if l.Format != "text" || l.Level != "debug" {
		t.Fatalf("flags not bound: %+v", l)
	}
}

func TestLoggingDefaults(t *testing.T) {
	for _, def := range []string{"json", "text"} {
		fs := flag.NewFlagSet("x", flag.ContinueOnError)
		l := NewLogging(def, fs)
		if err := fs.Parse(nil); err != nil {
			t.Fatal(err)
		}
		if l.Format != def || l.Level != "info" {
			t.Fatalf("default %s: %+v", def, l)
		}
	}
}

func TestLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	l := &Logging{Format: "json", Level: "info"}
	log, err := l.Logger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hello", "k", "v")
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("json handler emitted non-JSON %q: %v", buf.String(), err)
	}
	if m["msg"] != "hello" || m["k"] != "v" {
		t.Fatalf("line %v", m)
	}

	buf.Reset()
	l = &Logging{Format: "text", Level: "warn"}
	log, err = l.Logger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	log.Info("dropped")
	log.Warn("kept")
	out := buf.String()
	if strings.Contains(out, "dropped") || !strings.Contains(out, "kept") {
		t.Fatalf("level filtering wrong: %q", out)
	}
	if json.Valid([]byte(out)) {
		t.Fatalf("text handler emitted JSON: %q", out)
	}
}

func TestLoggerRejectsUnknown(t *testing.T) {
	if _, err := (&Logging{Format: "xml", Level: "info"}).Logger(io.Discard); err == nil {
		t.Fatal("unknown format accepted")
	}
	if _, err := (&Logging{Format: "json", Level: "loud"}).Logger(io.Discard); err == nil {
		t.Fatal("unknown level accepted")
	}
}

func TestParseLogLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"WARN": slog.LevelWarn, "warning": slog.LevelWarn, "Error": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLogLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLogLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLogLevel("verbose"); err == nil {
		t.Error("unknown level accepted")
	}
}
