package resultcache

import (
	"bytes"
	"context"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"charmtrace/internal/apps/jacobi"
	"charmtrace/internal/core"
	"charmtrace/internal/telemetry"
	"charmtrace/internal/trace"
	"charmtrace/internal/tracefile"
)

// testTrace returns the jacobi proxy trace plus its content digest.
func testTrace(t *testing.T) (*trace.Trace, string) {
	t.Helper()
	tr := jacobi.MustTrace(jacobi.DefaultConfig())
	var buf bytes.Buffer
	if err := tracefile.WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return tr, tracefile.DigestBytes(buf.Bytes())
}

func counter(reg *telemetry.Registry, name string) int64 {
	return reg.Counter(name).Value()
}

func TestGetExtractsOnceThenHitsMemory(t *testing.T) {
	tr, digest := testTrace(t)
	c, err := New(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	s1, err := c.Get(context.Background(), digest, tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.Get(context.Background(), digest, tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("memory hit returned a different structure pointer")
	}
	reg := c.Registry()
	if got := counter(reg, "cache.misses"); got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
	if got := counter(reg, "cache.mem_hits"); got != 1 {
		t.Errorf("mem_hits = %d, want 1", got)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	if _, err := os.Stat(c.DiskPath(digest, opt)); err != nil {
		t.Errorf("disk entry missing: %v", err)
	}
	// The extraction-latency histogram recorded the miss.
	snap := reg.Snapshot()
	if snap.Histograms["cache.extract_ms"].Count != 1 {
		t.Errorf("extract_ms count = %d, want 1", snap.Histograms["cache.extract_ms"].Count)
	}
}

// TestConcurrentRequestsCoalesce: K parallel requests for one uncached key
// run Extract exactly once; the followers share the leader's result.
func TestConcurrentRequestsCoalesce(t *testing.T) {
	tr, digest := testTrace(t)
	const K = 8
	gate := make(chan struct{})
	var calls atomic.Int64
	c, err := New(Config{
		Dir: t.TempDir(),
		Extract: func(tr *trace.Trace, opt core.Options) (*core.Structure, error) {
			calls.Add(1)
			<-gate
			return core.Extract(tr, opt)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	results := make([]*core.Structure, K)
	errs := make([]error, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.Get(context.Background(), digest, tr, opt)
		}(i)
	}
	// The leader is parked in Extract; wait until every follower has joined
	// its flight before releasing it.
	deadline := time.Now().Add(10 * time.Second)
	for counter(c.Registry(), "cache.coalesced") < K-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d followers joined the flight", counter(c.Registry(), "cache.coalesced"))
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	for i := 0; i < K; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Errorf("request %d got a different structure", i)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("Extract ran %d times, want exactly 1", got)
	}
	if got := counter(c.Registry(), "cache.misses"); got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
}

// TestFollowerHonorsContext: a follower abandons the flight when its
// context expires while the leader keeps extracting.
func TestFollowerHonorsContext(t *testing.T) {
	tr, digest := testTrace(t)
	gate := make(chan struct{})
	c, err := New(Config{
		Extract: func(tr *trace.Trace, opt core.Options) (*core.Structure, error) {
			<-gate
			return core.Extract(tr, opt)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	leaderDone := make(chan error, 1)
	go func() {
		_, err := c.Get(context.Background(), digest, tr, opt)
		leaderDone <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		c.mu.Lock()
		n := len(c.flights)
		c.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("leader never registered its flight")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Get(ctx, digest, tr, opt); err != context.Canceled {
		t.Errorf("cancelled follower returned %v, want context.Canceled", err)
	}
	close(gate)
	if err := <-leaderDone; err != nil {
		t.Errorf("leader failed: %v", err)
	}
}

// TestDiskStoreSurvivesRestart: a second cache over the same directory
// serves the first cache's work from disk, byte-identical to a fresh
// extraction at a different parallelism.
func TestDiskStoreSurvivesRestart(t *testing.T) {
	tr, digest := testTrace(t)
	dir := t.TempDir()
	opt := core.DefaultOptions()
	opt.Parallelism = 4

	c1, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Get(context.Background(), digest, tr, opt); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh cache, cold memory, same directory.
	c2, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s, err := c2.Get(context.Background(), digest, tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	reg := c2.Registry()
	if got := counter(reg, "cache.disk_hits"); got != 1 {
		t.Errorf("disk_hits = %d, want 1", got)
	}
	if got := counter(reg, "cache.misses"); got != 0 {
		t.Errorf("misses = %d, want 0", got)
	}

	// The stored bytes equal a fresh sequential extraction's encoding: the
	// cache never changes what the pipeline would have produced.
	seq := core.DefaultOptions()
	seq.Parallelism = 1
	fresh, err := core.Extract(tr, seq)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := core.EncodeStructure(&want, fresh); err != nil {
		t.Fatal(err)
	}
	stored, err := os.ReadFile(c2.DiskPath(digest, opt))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stored, want.Bytes()) {
		t.Error("disk store bytes differ from a fresh sequential extraction")
	}
	var again bytes.Buffer
	s.Opts = seq // encoding includes the fingerprint, identical either way
	if err := core.EncodeStructure(&again, s); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), want.Bytes()) {
		t.Error("restart-served structure re-encodes differently from fresh extraction")
	}
}

// TestEvictionFallsBackToDisk: the LRU evicts beyond its bound, and an
// evicted key is served from disk, not re-extracted.
func TestEvictionFallsBackToDisk(t *testing.T) {
	tr, digest := testTrace(t)
	c, err := New(Config{Dir: t.TempDir(), MaxMemEntries: 1})
	if err != nil {
		t.Fatal(err)
	}
	optA := core.DefaultOptions()
	optB := core.DefaultOptions()
	optB.Reorder = false // distinct fingerprint, distinct key
	ctx := context.Background()
	if _, err := c.Get(ctx, digest, tr, optA); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(ctx, digest, tr, optB); err != nil {
		t.Fatal(err)
	}
	reg := c.Registry()
	if got := counter(reg, "cache.evictions"); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	missesBefore := counter(reg, "cache.misses")
	if _, err := c.Get(ctx, digest, tr, optA); err != nil {
		t.Fatal(err)
	}
	if got := counter(reg, "cache.misses"); got != missesBefore {
		t.Errorf("evicted key re-extracted (misses %d -> %d), want disk hit", missesBefore, got)
	}
	if got := counter(reg, "cache.disk_hits"); got != 1 {
		t.Errorf("disk_hits = %d, want 1", got)
	}
}

// TestCorruptDiskEntrySelfHeals: garbage on disk is counted, re-extracted
// and overwritten with a valid entry.
func TestCorruptDiskEntrySelfHeals(t *testing.T) {
	tr, digest := testTrace(t)
	dir := t.TempDir()
	c, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	path := c.DiskPath(digest, opt)
	if err := os.WriteFile(path, []byte("not a structure"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(context.Background(), digest, tr, opt); err != nil {
		t.Fatal(err)
	}
	reg := c.Registry()
	if got := counter(reg, "cache.disk_errors"); got != 1 {
		t.Errorf("disk_errors = %d, want 1", got)
	}
	if got := counter(reg, "cache.misses"); got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := core.DecodeStructure(bytes.NewReader(data), tr); err != nil {
		t.Errorf("healed disk entry does not decode: %v", err)
	}
}
