// Quickstart: simulate the paper's running example (Jacobi 2D), recover its
// logical structure, and look at it three ways — the phase summary, the
// chare x logical-step grid, and the physical timeline it was recovered
// from (the two views of Figure 8).
package main

import (
	"fmt"
	"log"

	"charmtrace"
)

func main() {
	// A 4x4 chare array on 8 processors, four Jacobi iterations.
	cfg := charmtrace.DefaultJacobiConfig()
	tr, err := charmtrace.JacobiTrace(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d chares, %d serial blocks, %d dependency events\n\n",
		len(tr.Chares), len(tr.Blocks), len(tr.Events))

	// Recover the logical structure: phases + logical steps.
	s, err := charmtrace.Extract(tr, charmtrace.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered %d phases over global steps 0..%d\n\n", s.NumPhases(), s.MaxStep())
	fmt.Println("== phase summary (note the alternating app / runtime pattern) ==")
	fmt.Print(charmtrace.PhaseSummary(s))

	fmt.Println("\n== logical structure (chares x steps, symbol = phase) ==")
	fmt.Print(charmtrace.RenderLogical(s))

	fmt.Println("\n== physical time (same events, bucketed virtual time) ==")
	fmt.Print(charmtrace.RenderPhysical(tr, s, 100))

	// The Section 4 metrics ride on top of the structure.
	r := charmtrace.ComputeMetrics(s)
	fmt.Printf("\ntotal idle experienced: %d ns, total imbalance: %d ns\n",
		r.TotalIdleExperienced(), r.TotalImbalance())
}
