// Command benchdiff compares two BENCH_extract.json benchmark exports and
// fails when an enforced row regresses past its thresholds — the repo's
// perf-regression guard:
//
//	go run ./cmd/experiments -bench-json BENCH_fresh.json
//	go run ./cmd/benchdiff -new BENCH_fresh.json
//
// Every row is reported; only rows matching an -enforce name prefix gate
// the exit status. The defaults guard the paper-scale extraction benchmark
// (Fig10MergeTree) and the serving path (Serve) against >30% wall-time or
// >20% allocation growth, while leaving the noisier rows advisory.
// Missing enforced rows fail too — a benchmark that silently disappears is
// not a passing benchmark. -markdown renders the table for a CI step
// summary.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"charmtrace/internal/telemetry"
)

// row is one benchmark's comparison: the baseline and fresh measurements
// with their relative deltas, and the verdict the thresholds imply.
type row struct {
	Name       string
	BaseNs     int64
	NewNs      int64
	WallDelta  float64 // (new-base)/base; 0 when either side is missing
	BaseAlloc  int64
	NewAlloc   int64
	AllocDelta float64
	Enforced   bool
	Status     string // ok, improved, REGRESSION, missing, new
}

// thresholds carries the per-run regression bounds.
type thresholds struct {
	maxWall  float64 // relative wall-time growth an enforced row may show
	maxAlloc float64 // relative allocs/op growth an enforced row may show
}

// enforcedBy reports whether name matches any of the enforced name
// prefixes (a prefix matches the benchmark and its sub-benchmarks:
// "Serve" matches "Serve/miss").
func enforcedBy(name string, prefixes []string) bool {
	for _, p := range prefixes {
		if p == "" {
			continue
		}
		if name == p || strings.HasPrefix(name, p+"/") {
			return true
		}
	}
	return false
}

// rel computes (new-base)/base, guarding the degenerate baseline.
func rel(base, new int64) float64 {
	if base <= 0 {
		return 0
	}
	return float64(new-base) / float64(base)
}

// compare joins the two exports by benchmark name and applies the
// thresholds. Rows come out in baseline order with new-only rows appended,
// so the table diff is stable across runs.
func compare(base, fresh *telemetry.BenchExport, enforce []string, th thresholds) []row {
	freshBy := make(map[string]telemetry.BenchResult, len(fresh.Benchmarks))
	for _, b := range fresh.Benchmarks {
		freshBy[b.Name] = b
	}
	baseNames := make(map[string]bool, len(base.Benchmarks))
	var rows []row
	for _, b := range base.Benchmarks {
		baseNames[b.Name] = true
		r := row{
			Name:      b.Name,
			BaseNs:    b.NsPerOp,
			BaseAlloc: b.AllocsPerOp,
			Enforced:  enforcedBy(b.Name, enforce),
		}
		f, ok := freshBy[b.Name]
		if !ok {
			r.Status = "missing"
			rows = append(rows, r)
			continue
		}
		r.NewNs = f.NsPerOp
		r.NewAlloc = f.AllocsPerOp
		r.WallDelta = rel(b.NsPerOp, f.NsPerOp)
		r.AllocDelta = rel(b.AllocsPerOp, f.AllocsPerOp)
		switch {
		case r.WallDelta > th.maxWall || r.AllocDelta > th.maxAlloc:
			r.Status = "REGRESSION"
		case r.WallDelta < -0.05:
			r.Status = "improved"
		default:
			r.Status = "ok"
		}
		rows = append(rows, r)
	}
	var extra []row
	for name, f := range freshBy {
		if baseNames[name] {
			continue
		}
		extra = append(extra, row{
			Name: name, NewNs: f.NsPerOp, NewAlloc: f.AllocsPerOp,
			Enforced: enforcedBy(name, enforce), Status: "new",
		})
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i].Name < extra[j].Name })
	return append(rows, extra...)
}

// failing reports whether any enforced row gates the exit status: a
// REGRESSION past the thresholds, or an enforced baseline row the fresh
// run no longer produces.
func failing(rows []row) []row {
	var bad []row
	for _, r := range rows {
		if r.Enforced && (r.Status == "REGRESSION" || r.Status == "missing") {
			bad = append(bad, r)
		}
	}
	return bad
}

// pct renders a relative delta as a signed percentage.
func pct(v float64) string { return fmt.Sprintf("%+.1f%%", v*100) }

// writeTable renders the comparison, plain for terminals or as a GitHub
// markdown table for CI step summaries.
func writeTable(w io.Writer, rows []row, markdown bool) {
	if markdown {
		fmt.Fprintln(w, "| benchmark | base ns/op | new ns/op | wall | base allocs | new allocs | allocs | gate | status |")
		fmt.Fprintln(w, "|---|---:|---:|---:|---:|---:|---:|:---:|---|")
	} else {
		fmt.Fprintf(w, "%-28s %14s %14s %8s %12s %12s %8s  %-8s %s\n",
			"benchmark", "base ns/op", "new ns/op", "wall", "base allocs", "new allocs", "allocs", "gate", "status")
	}
	for _, r := range rows {
		gate := ""
		if r.Enforced {
			gate = "enforced"
		}
		wall, alloc := pct(r.WallDelta), pct(r.AllocDelta)
		if r.Status == "missing" || r.Status == "new" {
			wall, alloc = "-", "-"
		}
		if markdown {
			fmt.Fprintf(w, "| %s | %d | %d | %s | %d | %d | %s | %s | %s |\n",
				r.Name, r.BaseNs, r.NewNs, wall, r.BaseAlloc, r.NewAlloc, alloc, gate, r.Status)
		} else {
			fmt.Fprintf(w, "%-28s %14d %14d %8s %12d %12d %8s  %-8s %s\n",
				r.Name, r.BaseNs, r.NewNs, wall, r.BaseAlloc, r.NewAlloc, alloc, gate, r.Status)
		}
	}
}

// run is main without the process exit, for tests: parse flags, compare,
// render, and return the exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baseline := fs.String("baseline", "BENCH_extract.json", "committed baseline bench export")
	fresh := fs.String("new", "", "fresh bench export to compare (required)")
	maxWall := fs.Float64("max-wall", 0.30, "enforced rows fail past this relative wall-time growth")
	maxAlloc := fs.Float64("max-alloc", 0.20, "enforced rows fail past this relative allocs/op growth")
	enforce := fs.String("enforce", "Fig10MergeTree,Serve,Lod", "comma-separated benchmark name prefixes that gate the exit status")
	markdown := fs.Bool("markdown", false, "render a GitHub markdown table (for CI step summaries)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *fresh == "" {
		fmt.Fprintln(stderr, "benchdiff: -new is required")
		fs.Usage()
		return 2
	}
	base, err := telemetry.ReadBenchFile(*baseline)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	newExp, err := telemetry.ReadBenchFile(*fresh)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	var prefixes []string
	for _, p := range strings.Split(*enforce, ",") {
		if p = strings.TrimSpace(p); p != "" {
			prefixes = append(prefixes, p)
		}
	}
	rows := compare(base, newExp, prefixes, thresholds{maxWall: *maxWall, maxAlloc: *maxAlloc})
	writeTable(stdout, rows, *markdown)
	if bad := failing(rows); len(bad) > 0 {
		fmt.Fprintf(stderr, "benchdiff: %d enforced benchmark(s) failed (wall > %+.0f%% or allocs > %+.0f%%):\n",
			len(bad), *maxWall*100, *maxAlloc*100)
		for _, r := range bad {
			if r.Status == "missing" {
				fmt.Fprintf(stderr, "  %s: missing from the fresh run\n", r.Name)
				continue
			}
			fmt.Fprintf(stderr, "  %s: wall %s, allocs %s\n", r.Name, pct(r.WallDelta), pct(r.AllocDelta))
		}
		return 1
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
