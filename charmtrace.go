// Package charmtrace recovers logical structure from event traces of
// asynchronous task-based (Charm++-style) and message-passing programs,
// implementing Isaacs et al., "Recovering Logical Structure from Charm++
// Event Traces" (SC '15).
//
// The typical workflow:
//
//	tr, err := charmtrace.ReadTraceFile("run.trace") // or build one with a simulator
//	s, err := charmtrace.Extract(tr, charmtrace.DefaultOptions())
//	fmt.Print(charmtrace.RenderLogical(s))
//	report := charmtrace.ComputeMetrics(s)
//
// Traces come from the bundled deterministic runtime simulators (the
// Charm++-style runtime in internal/sim and the MPI-style one in
// internal/mpisim, exposed here through the proxy-application generators
// such as JacobiTrace), from trace files, or from any code that fills a
// TraceBuilder.
package charmtrace

import (
	"io"

	"charmtrace/internal/apps/jacobi"
	"charmtrace/internal/apps/lassen"
	"charmtrace/internal/apps/lulesh"
	"charmtrace/internal/apps/mergetree"
	"charmtrace/internal/apps/nasbt"
	"charmtrace/internal/apps/pdes"
	"charmtrace/internal/charegroup"
	"charmtrace/internal/core"
	"charmtrace/internal/metrics"
	"charmtrace/internal/profile"
	"charmtrace/internal/skew"
	"charmtrace/internal/structdiff"
	"charmtrace/internal/trace"
	"charmtrace/internal/tracefile"
	"charmtrace/internal/viz"
)

// Core data model.
type (
	// Trace is a recorded execution: chares, entry methods, serial blocks,
	// dependency events and idle spans.
	Trace = trace.Trace
	// TraceBuilder assembles traces incrementally.
	TraceBuilder = trace.Builder
	// Time is virtual nanoseconds.
	Time = trace.Time
	// ChareID identifies a chare.
	ChareID = trace.ChareID
	// EventID indexes Trace.Events.
	EventID = trace.EventID
	// Options configures structure extraction.
	Options = core.Options
	// Structure is the recovered logical structure: the phase DAG plus a
	// (phase, local step, global step) position for every event.
	Structure = core.Structure
	// Phase is one recovered phase.
	Phase = core.Phase
	// MetricsReport holds the Section 4 metrics.
	MetricsReport = metrics.Report
)

// NewTraceBuilder returns a builder for a machine with numPE processors.
func NewTraceBuilder(numPE int) *TraceBuilder { return trace.NewBuilder(numPE) }

// DefaultOptions is the task-based configuration used for Charm++ traces:
// reordering, dependency inference and the neighbour-serial merge enabled.
func DefaultOptions() Options { return core.DefaultOptions() }

// MessagePassingOptions is the configuration for process-centric traces:
// per-process order supplies control dependencies and the Figure 9
// send-pinning reorder rule applies.
func MessagePassingOptions() Options { return core.MessagePassingOptions() }

// Extract recovers the logical structure of a trace (the paper's Section 3
// algorithm: phase-finding followed by step assignment). The pipeline's
// parallel stages use Options.Parallelism workers (0 = all cores); the
// result is byte-identical for every worker count.
func Extract(tr *Trace, opt Options) (*Structure, error) { return core.Extract(tr, opt) }

// ExtractBatch analyzes many traces concurrently over a worker pool of
// Options.Parallelism goroutines, returning one structure per trace in
// input order. Each result is identical to a lone Extract of that trace; if
// any trace fails, the error of the lowest-indexed failure is returned,
// annotated with its position.
func ExtractBatch(traces []*Trace, opt Options) ([]*Structure, error) {
	return core.ExtractBatch(traces, opt)
}

// ComputeMetrics derives idle experienced, differential duration and
// imbalance (Section 4) over a structure.
func ComputeMetrics(s *Structure) *MetricsReport { return metrics.Compute(s) }

// Lateness computes the traditional per-step lateness metric of Isaacs et
// al. [13], suited to bulk-synchronous message-passing traces.
func Lateness(s *Structure) []Time { return metrics.Lateness(s) }

// ReadTrace parses a trace from either the text or the compact binary
// format (detected by magic).
func ReadTrace(r io.Reader) (*Trace, error) { return tracefile.ReadAuto(r) }

// ReadTraceFile parses a trace file.
func ReadTraceFile(path string) (*Trace, error) { return tracefile.ReadFile(path) }

// WriteTrace serializes a trace.
func WriteTrace(w io.Writer, tr *Trace) error { return tracefile.Write(w, tr) }

// WriteTraceFile serializes a trace to a file.
func WriteTraceFile(path string, tr *Trace) error { return tracefile.WriteFile(path, tr) }

// WriteTraceBinary serializes a trace in the compact binary format.
func WriteTraceBinary(w io.Writer, tr *Trace) error { return tracefile.WriteBinary(w, tr) }

// RenderLogical renders the chare x logical-step grid, one phase symbol per
// event.
func RenderLogical(s *Structure) string { return viz.Logical(s) }

// RenderLogicalMetric renders the logical grid shaded by a per-event metric.
func RenderLogicalMetric(s *Structure, metric []Time) string {
	return viz.LogicalMetric(s, metric)
}

// RenderPhysical renders the trace against bucketed virtual time; pass a
// structure to colour blocks by phase, or nil.
func RenderPhysical(tr *Trace, s *Structure, buckets int) string {
	return viz.Physical(tr, s, buckets)
}

// RenderSVG renders the logical structure as an SVG document.
func RenderSVG(s *Structure) string { return viz.LogicalSVG(s) }

// PhaseSummary prints one line per phase in global-step order.
func PhaseSummary(s *Structure) string { return viz.PhaseSummary(s) }

// ChareCluster groups behaviourally equivalent chares for scalable renders.
type ChareCluster = charegroup.Cluster

// ClusterExact groups chares whose logical timelines are identical (same
// steps, kinds and phase-relative positions).
func ClusterExact(s *Structure) []ChareCluster { return charegroup.Exact(s) }

// ClusterByPhaseShape groups chares by the coarser per-phase shape of their
// timelines, merging symmetric concurrent phases.
func ClusterByPhaseShape(s *Structure) []ChareCluster { return charegroup.ByPhaseShape(s) }

// RenderLogicalClustered renders one row per cluster — the scalable view
// the paper's conclusion calls for at large chare counts.
func RenderLogicalClustered(s *Structure, clusters []ChareCluster) string {
	rows := make([]viz.ClusterRow, len(clusters))
	for i := range clusters {
		rows[i] = viz.ClusterRow{
			Representative: clusters[i].Representative,
			Label:          clusters[i].Label(s.Trace),
		}
	}
	return viz.LogicalClustered(s, rows)
}

// StructureDiff is the comparison of two recovered structures.
type StructureDiff = structdiff.Diff

// CompareStructures diffs two structures of the same workload (different
// seeds, options or code versions): an empty diff certifies logical
// equivalence; a non-empty one localizes which phases or chares moved.
func CompareStructures(a, b *Structure) (*StructureDiff, error) {
	return structdiff.Compare(a, b)
}

// WindowTrace extracts the sub-trace of serial blocks lying entirely
// within [from, to) — the standard way to analyze a few iterations of a
// long run. Receives whose sends fall outside the window are dropped.
func WindowTrace(tr *Trace, from, to Time) (*Trace, error) {
	return trace.Window(tr, from, to)
}

// ProfileReport is a Projections-style aggregate profile.
type ProfileReport = profile.Report

// BuildProfile aggregates a trace into per-entry, per-processor and
// message-volume statistics.
func BuildProfile(tr *Trace) *ProfileReport { return profile.Build(tr) }

// InjectSkew returns a copy of a trace with every record on processor p
// shifted by offsets[p], modelling unsynchronized per-processor clocks.
func InjectSkew(tr *Trace, offsets []Time) (*Trace, error) { return skew.Inject(tr, offsets) }

// SkewViolations counts receives recorded less than minGap after their
// matching sends — the causal inconsistencies clock skew introduces.
func SkewViolations(tr *Trace, minGap Time) int { return skew.Violations(tr, minGap) }

// CorrectSkew recovers per-processor clock offsets restoring the causal
// send-before-receive order (the post-processing Section 4 refers to) and
// returns the corrected trace plus the offsets applied.
func CorrectSkew(tr *Trace, minGap Time) (*Trace, []Time, error) {
	return skew.Correct(tr, minGap)
}

// Proxy-application configurations and trace generators. Each runs the
// corresponding workload on the bundled deterministic runtime simulators
// and returns its event trace.
type (
	// JacobiConfig parameterizes the Jacobi 2D running example.
	JacobiConfig = jacobi.Config
	// LuleshConfig parameterizes the LULESH proxy (Charm++ and MPI).
	LuleshConfig = lulesh.Config
	// LassenConfig parameterizes the LASSEN wavefront proxy.
	LassenConfig = lassen.Config
	// MergeTreeConfig parameterizes the 1,024-process MPI merge tree.
	MergeTreeConfig = mergetree.Config
	// PDESConfig parameterizes the Section 7.1 PDES mini-app.
	PDESConfig = pdes.Config
	// NASBTConfig parameterizes the Figure 1 BT-style benchmark.
	NASBTConfig = nasbt.Config
)

// JacobiTrace runs the Jacobi 2D proxy (Figures 8, 12, 14, 15).
func JacobiTrace(cfg JacobiConfig) (*Trace, error) { return jacobi.Trace(cfg) }

// DefaultJacobiConfig is the paper's 16-chare run on 8 processors.
func DefaultJacobiConfig() JacobiConfig { return jacobi.DefaultConfig() }

// LuleshCharmTrace runs the Charm++ LULESH proxy (Figure 16b).
func LuleshCharmTrace(cfg LuleshConfig) (*Trace, error) { return lulesh.CharmTrace(cfg) }

// LuleshMPITrace runs the MPI LULESH proxy (Figure 16a).
func LuleshMPITrace(cfg LuleshConfig) (*Trace, error) { return lulesh.MPITrace(cfg) }

// DefaultLuleshConfig is the paper's 8-chare run on 2 processors.
func DefaultLuleshConfig() LuleshConfig { return lulesh.DefaultConfig() }

// LassenCharmTrace runs the Charm++ LASSEN proxy (Figures 20b/d, 21-23).
func LassenCharmTrace(cfg LassenConfig) (*Trace, error) { return lassen.CharmTrace(cfg) }

// LassenMPITrace runs the MPI LASSEN proxy (Figures 20a/c).
func LassenMPITrace(cfg LassenConfig) (*Trace, error) { return lassen.MPITrace(cfg) }

// DefaultLassenConfig is the 8-chare (4x2) decomposition on 8 processors;
// FineLassenConfig the 64-chare (8x8) one.
func DefaultLassenConfig() LassenConfig { return lassen.DefaultConfig() }

// FineLassenConfig is the 64-chare LASSEN decomposition.
func FineLassenConfig() LassenConfig { return lassen.FineConfig() }

// MergeTreeTrace runs the MPI merge tree (Figure 10).
func MergeTreeTrace(cfg MergeTreeConfig) (*Trace, error) { return mergetree.Trace(cfg) }

// DefaultMergeTreeConfig is the paper's 1,024-process configuration.
func DefaultMergeTreeConfig() MergeTreeConfig { return mergetree.DefaultConfig() }

// PDESTrace runs the PDES mini-app (Figure 24).
func PDESTrace(cfg PDESConfig) (*Trace, error) { return pdes.Trace(cfg) }

// DefaultPDESConfig is the paper's 16-chare, 4-process configuration.
func DefaultPDESConfig() PDESConfig { return pdes.DefaultConfig() }

// NASBTTrace runs the BT-style benchmark (Figure 1).
func NASBTTrace(cfg NASBTConfig) (*Trace, error) { return nasbt.Trace(cfg) }

// DefaultNASBTConfig is the 9-process configuration of Figure 1.
func DefaultNASBTConfig() NASBTConfig { return nasbt.DefaultConfig() }
