package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"charmtrace/internal/telemetry"
	"charmtrace/internal/tracefile"
)

var updateGolden = flag.Bool("update", false, "rewrite the telemetry golden files")

// goldenStats extracts the fixed jacobi-2x2 fixture at parallelism 1 and
// masks the nondeterministic measurements (wall times, latency histograms)
// so what remains — stage set, merge counts, gauges, schema shape — is
// exact.
func goldenStats(t *testing.T) *Structure {
	t.Helper()
	tr, err := tracefile.ReadFile(filepath.Join("..", "tracefile", "testdata", "jacobi-2x2.trace.bin"))
	if err != nil {
		t.Fatalf("read fixture: %v", err)
	}
	opt := DefaultOptions()
	opt.Parallelism = 1
	s, err := Extract(tr, opt)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	return s
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch (run with -update after intended changes)\n--- got ---\n%s--- want ---\n%s",
			filepath.Base(path), got, want)
	}
}

// TestTimingReportGolden locks the rendered TimingReport shape: stage names,
// order, merge counts, round counts and the total line, with every duration
// masked to zero.
func TestTimingReportGolden(t *testing.T) {
	s := goldenStats(t)
	for k := range s.Stats.StageTime {
		s.Stats.StageTime[k] = 0
	}
	checkGolden(t, filepath.Join("testdata", "timing_report.golden"), []byte(s.Stats.TimingReport()))
}

// TestStatsExportGolden locks the versioned -stats-json schema over the same
// fixture: field names, stage table, counters and gauges, with durations
// zeroed, histogram latencies reduced to their (deterministic) counts, and
// the host's GOMAXPROCS masked. The export must also round-trip through the
// schema reader.
func TestStatsExportGolden(t *testing.T) {
	s := goldenStats(t)
	e := s.Stats.Export("core-test")
	e.GoMaxProcs = 1
	for i := range e.Stages {
		e.Stages[i].DurationNS = 0
	}
	for k, h := range e.Histograms {
		h.Sum, h.Min, h.Max, h.Buckets = 0, 0, 0, nil
		e.Histograms[k] = h
	}
	var buf bytes.Buffer
	if err := e.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := telemetry.ReadStats(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("export does not round-trip: %v", err)
	}
	checkGolden(t, filepath.Join("testdata", "stats_export.golden.json"), buf.Bytes())
}
