package lbmigrate

import (
	"testing"

	"charmtrace/internal/core"
	"charmtrace/internal/trace"
)

func TestMigrationHappensMidRun(t *testing.T) {
	tr := MustTrace(DefaultConfig())
	if !tr.Indexed() {
		t.Fatal("trace not indexed")
	}
	// Every third chare migrates: it must own blocks on more than one
	// processor, and the late blocks must sit off its home PE.
	moved := 0
	for _, c := range tr.Chares {
		if c.Runtime || c.Index%3 != 1 {
			continue
		}
		pes := map[trace.PE]bool{}
		for _, b := range tr.BlocksOfChare(c.ID) {
			pes[tr.Blocks[b].PE] = true
		}
		if len(pes) > 1 {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no chare ever executed off its home processor")
	}
}

func TestExtracts(t *testing.T) {
	for _, disableLB := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.DisableLB = disableLB
		s, err := core.Extract(MustTrace(cfg), core.DefaultOptions())
		if err != nil {
			t.Fatalf("DisableLB=%v: %v", disableLB, err)
		}
		if s.NumPhases() < cfg.Iterations {
			t.Fatalf("DisableLB=%v: %d phases for %d iterations", disableLB, s.NumPhases(), cfg.Iterations)
		}
	}
}
