package trace

import (
	"testing"
)

// windowFixture: three sequential exchanges at t≈0, 1000, 2000.
func windowFixture(t *testing.T) *Trace {
	t.Helper()
	b := NewBuilder(2)
	e := b.AddEntry("work")
	c0 := b.AddChare("a", NoArray, -1, 0)
	c1 := b.AddChare("b", NoArray, -1, 1)
	for round := 0; round < 3; round++ {
		base := Time(1000 * round)
		m := b.NewMsg()
		b.BeginBlock(c0, 0, e, base)
		b.Send(c0, m, base+10)
		b.EndBlock(c0, base+20)
		b.BeginBlock(c1, 1, e, base+100)
		b.Recv(c1, m, base+100)
		b.EndBlock(c1, base+120)
	}
	b.Idle(0, 20, 1000)
	return b.MustFinish()
}

func TestWindowKeepsInsideBlocks(t *testing.T) {
	tr := windowFixture(t)
	w, err := Window(tr, 900, 2100)
	if err != nil {
		t.Fatalf("Window: %v", err)
	}
	// Round 1 (t=1000..1120) and round 2's send block (2000..2020) fit;
	// round 2's recv block ends at 2120 >= 2100 and is dropped.
	if len(w.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(w.Blocks))
	}
	for _, b := range w.Blocks {
		if b.Begin < 900 || b.End >= 2100 {
			t.Fatalf("block outside window: [%d,%d]", b.Begin, b.End)
		}
	}
}

func TestWindowDropsOrphanReceives(t *testing.T) {
	tr := windowFixture(t)
	// Window starting after round 0's send block: its recv block (at 100)
	// is inside but the send is not, so the receive event must be dropped
	// while the block stays.
	w, err := Window(tr, 50, 900)
	if err != nil {
		t.Fatalf("Window: %v", err)
	}
	if len(w.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1 (the recv block)", len(w.Blocks))
	}
	if got := len(w.Events); got != 0 {
		t.Fatalf("events = %d, want 0 (orphan recv dropped)", got)
	}
}

func TestWindowClipsIdle(t *testing.T) {
	tr := windowFixture(t)
	w, err := Window(tr, 500, 900)
	if err != nil {
		t.Fatalf("Window: %v", err)
	}
	if len(w.Idles) != 1 {
		t.Fatalf("idles = %d, want 1", len(w.Idles))
	}
	if w.Idles[0].Begin != 500 || w.Idles[0].End != 900 {
		t.Fatalf("idle = [%d,%d], want clipped to [500,900]", w.Idles[0].Begin, w.Idles[0].End)
	}
}

func TestWindowDenseIDsAndValid(t *testing.T) {
	tr := windowFixture(t)
	w, err := Window(tr, 0, 3000)
	if err != nil {
		t.Fatalf("Window: %v", err)
	}
	if len(w.Blocks) != len(tr.Blocks) || len(w.Events) != len(tr.Events) {
		t.Fatal("full window changed the trace size")
	}
	for i, b := range w.Blocks {
		if int(b.ID) != i {
			t.Fatal("block IDs not dense")
		}
	}
	for i, ev := range w.Events {
		if int(ev.ID) != i {
			t.Fatal("event IDs not dense")
		}
	}
	if !w.Indexed() {
		t.Fatal("window not indexed")
	}
}

func TestWindowEmpty(t *testing.T) {
	tr := windowFixture(t)
	w, err := Window(tr, 5000, 6000)
	if err != nil {
		t.Fatalf("Window: %v", err)
	}
	if len(w.Blocks) != 0 || len(w.Events) != 0 {
		t.Fatal("out-of-range window not empty")
	}
}
