package faultsim

import (
	"strings"
	"testing"

	"charmtrace/internal/core"
)

// countBlocksOf returns how many serial blocks executed the entry whose
// name has the given suffix.
func countBlocksOf(t *testing.T, cfg Config, suffix string) int {
	t.Helper()
	tr := MustTrace(cfg)
	n := 0
	for _, b := range tr.Blocks {
		if strings.HasSuffix(tr.Entries[b.Entry].Name, suffix) {
			n++
		}
	}
	return n
}

func TestRestartReleasesTheStall(t *testing.T) {
	cfg := DefaultConfig()
	if got := countBlocksOf(t, cfg, "restartmgr::restart"); got != 1 {
		t.Fatalf("restart manager ran %d times, want 1", got)
	}
	if got := countBlocksOf(t, cfg, "ring::rollback"); got != cfg.Chares {
		t.Fatalf("rollback reached %d chares, want %d", got, cfg.Chares)
	}
	// The run continues past the failure iteration: every chare's final
	// resume for the last iteration must exist.
	if got := countBlocksOf(t, cfg, "ring::resume"); got != cfg.Chares*cfg.Iterations {
		t.Fatalf("resume ran %d times, want %d", got, cfg.Chares*cfg.Iterations)
	}
}

func TestFailureFreeRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FailAt = cfg.Iterations // never fails
	tr := MustTrace(cfg)
	if _, err := core.Extract(tr, core.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
}

func TestExtracts(t *testing.T) {
	s, err := core.Extract(MustTrace(DefaultConfig()), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if s.NumPhases() == 0 {
		t.Fatal("no phases recovered")
	}
}
