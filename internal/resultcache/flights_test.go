package resultcache

import (
	"context"
	"sync"
	"testing"
	"time"

	"charmtrace/internal/core"
	"charmtrace/internal/telemetry"
	"charmtrace/internal/trace"
)

// blockingExtractor is a substituted extractor that publishes known
// progress through opt.Progress, then blocks until released — the
// deterministic way to observe an in-flight extraction.
type blockingExtractor struct {
	entered chan struct{} // closed once the extractor has published progress
	release chan struct{} // closing it lets the extraction finish
	once    sync.Once
}

func newBlockingExtractor() *blockingExtractor {
	return &blockingExtractor{entered: make(chan struct{}), release: make(chan struct{})}
}

func (b *blockingExtractor) extract(tr *trace.Trace, opt core.Options) (*core.Structure, error) {
	if opt.Progress != nil {
		opt.Progress.SetStage("dependency-merge")
		opt.Progress.StartLoop(100)
		opt.Progress.Add(37)
	}
	b.once.Do(func() { close(b.entered) })
	<-b.release
	return core.Extract(tr, core.Options{})
}

// TestFlightsListsInProgressExtractions: while an extraction runs, Flights
// reports its identity, waiter count and the live stage progress the
// extractor published; after completion the table is empty again.
func TestFlightsListsInProgressExtractions(t *testing.T) {
	tr, digest := testTrace(t)
	ext := newBlockingExtractor()
	c, err := New(Config{Extract: ext.extract})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()

	if got := c.Flights(); len(got) != 0 {
		t.Fatalf("idle cache lists %d flights", len(got))
	}

	done := make(chan error, 1)
	go func() {
		_, err := c.Get(context.Background(), digest, tr, opt)
		done <- err
	}()
	<-ext.entered

	flights := c.Flights()
	if len(flights) != 1 {
		t.Fatalf("flights = %d, want 1", len(flights))
	}
	f := flights[0]
	if f.TraceDigest != digest {
		t.Errorf("digest %q, want %q", f.TraceDigest, digest)
	}
	if f.Fingerprint != opt.Fingerprint() {
		t.Errorf("fingerprint %q, want %q", f.Fingerprint, opt.Fingerprint())
	}
	if f.Waiters != 1 {
		t.Errorf("waiters = %d, want 1", f.Waiters)
	}
	if f.Progress.Stage != "dependency-merge" || f.Progress.Scanned != 37 || f.Progress.Total != 100 {
		t.Errorf("progress = %+v, want dependency-merge 37/100", f.Progress)
	}
	if f.ElapsedMS < 0 {
		t.Errorf("elapsed %v", f.ElapsedMS)
	}
	if g := c.Registry().Gauge("cache.flights").Value(); g != 1 {
		t.Errorf("cache.flights gauge = %v, want 1", g)
	}

	close(ext.release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(c.Flights()) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("flight still listed after completion")
		}
		time.Sleep(time.Millisecond)
	}
	if g := c.Registry().Gauge("cache.flights").Value(); g != 0 {
		t.Errorf("cache.flights gauge = %v after completion", g)
	}
}

// outcomeOf runs one Get with a recorder attached and returns the outcome.
func outcomeOf(t *testing.T, c *Cache, digest string, tr *trace.Trace, opt core.Options) string {
	t.Helper()
	ctx, rec := WithOutcomeRecorder(context.Background())
	if _, err := c.Get(ctx, digest, tr, opt); err != nil {
		t.Fatal(err)
	}
	return rec.Outcome()
}

// TestOutcomeReporting walks one key through the cache layers and checks
// the per-request outcome each layer reports: miss (extraction ran), mem
// (LRU hit), disk (decode after restart), coalesced (joined another
// request's flight), detached (caller's context expired).
func TestOutcomeReporting(t *testing.T) {
	tr, digest := testTrace(t)
	dir := t.TempDir()
	c, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()

	if got := outcomeOf(t, c, digest, tr, opt); got != OutcomeMiss {
		t.Fatalf("first request outcome %q, want %q", got, OutcomeMiss)
	}
	if got := outcomeOf(t, c, digest, tr, opt); got != OutcomeMem {
		t.Fatalf("second request outcome %q, want %q", got, OutcomeMem)
	}

	// A fresh cache over the same directory: the disk layer answers.
	c2, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := outcomeOf(t, c2, digest, tr, opt); got != OutcomeDisk {
		t.Fatalf("restart request outcome %q, want %q", got, OutcomeDisk)
	}
}

func TestOutcomeCoalescedAndDetached(t *testing.T) {
	tr, digest := testTrace(t)
	ext := newBlockingExtractor()
	c, err := New(Config{Extract: ext.extract})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()

	leaderCtx, leaderRec := WithOutcomeRecorder(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, err := c.Get(leaderCtx, digest, tr, opt)
		leaderDone <- err
	}()
	<-ext.entered

	// A follower with an already-cancelled context detaches immediately.
	detachedCtx, detachedRec := WithOutcomeRecorder(context.Background())
	detachedCtx, cancel := context.WithCancel(detachedCtx)
	cancel()
	if _, err := c.Get(detachedCtx, digest, tr, opt); err == nil {
		t.Fatal("cancelled follower must return an error")
	}
	if got := detachedRec.Outcome(); got != OutcomeDetached {
		t.Fatalf("detached outcome %q, want %q", got, OutcomeDetached)
	}

	// A live follower joins the leader's flight.
	followerCtx, followerRec := WithOutcomeRecorder(context.Background())
	followerDone := make(chan error, 1)
	go func() {
		_, err := c.Get(followerCtx, digest, tr, opt)
		followerDone <- err
	}()
	// Wait until the follower is counted on the flight, then release.
	deadline := time.Now().Add(2 * time.Second)
	for {
		fl := c.Flights()
		if len(fl) == 1 && fl[0].Waiters >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never joined the flight")
		}
		time.Sleep(time.Millisecond)
	}
	close(ext.release)
	if err := <-leaderDone; err != nil {
		t.Fatal(err)
	}
	if err := <-followerDone; err != nil {
		t.Fatal(err)
	}
	if got := leaderRec.Outcome(); got != OutcomeMiss {
		t.Fatalf("leader outcome %q, want %q", got, OutcomeMiss)
	}
	if got := followerRec.Outcome(); got != OutcomeCoalesced {
		t.Fatalf("follower outcome %q, want %q", got, OutcomeCoalesced)
	}
}

// TestFlightCarriesRequestID: the detached flight context inherits the
// leader's request ID, so extraction spans stay correlated with the
// request that launched them even after the requester detaches.
func TestFlightCarriesRequestID(t *testing.T) {
	tr, digest := testTrace(t)
	var seen string
	c, err := New(Config{
		Extract: func(tr *trace.Trace, opt core.Options) (*core.Structure, error) {
			seen = telemetry.RequestID(opt.Context)
			return core.Extract(tr, core.Options{})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := telemetry.WithRequestID(context.Background(), "req-42")
	if _, err := c.Get(ctx, digest, tr, core.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if seen != "req-42" {
		t.Fatalf("flight context carried request id %q, want req-42", seen)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var rec *OutcomeRecorder
	rec.Record(OutcomeMem) // must not panic
	if rec.Outcome() != "" {
		t.Fatal("nil recorder outcome")
	}
	// A context without a recorder ignores RecordOutcome.
	RecordOutcome(context.Background(), OutcomeMem)
}
