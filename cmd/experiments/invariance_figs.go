package main

import (
	"fmt"

	"charmtrace/internal/apps/jacobi"
	"charmtrace/internal/core"
	"charmtrace/internal/structdiff"
	"charmtrace/internal/trace"
)

func init() {
	register("inv1", "invariance: logical structure across seeds (the paper's central premise)", invSeeds)
}

func invSeeds(bool) {
	// All seed runs are analyzed in one concurrent batch; results come back
	// in input order, identical to per-trace Extract calls.
	const seeds = 8
	traces := []*trace.Trace{must(jacobi.Trace(jacobi.DefaultConfig()))}
	for seed := int64(2); seed < 2+seeds; seed++ {
		cfg := jacobi.DefaultConfig()
		cfg.Seed = seed
		traces = append(traces, must(jacobi.Trace(cfg)))
	}
	opt := core.DefaultOptions()
	tele.Apply(&opt)
	structs := must(core.ExtractBatch(traces, opt))
	for _, s := range structs {
		if err := s.Validate(); err != nil {
			panic(err)
		}
	}
	base := structs[0]
	equivalent := 0
	for i, other := range structs[1:] {
		d := must(structdiff.Compare(base, other))
		if d.Empty() {
			equivalent++
		} else {
			fmt.Printf("  seed %d diverges:\n%s", int64(2)+int64(i), d)
		}
	}
	fmt.Printf("  %d/%d alternative-seed runs recover an equivalent logical structure\n",
		equivalent, seeds)
	paperVsMeasured(
		"logical structure reflects the developers' program, not the non-deterministic schedule: reordering shows a structure of dependencies unaffected by imbalance, network travel time and queuing policy (§3.2.1)",
		fmt.Sprintf("%d/%d seeds — different jitter, same recovered structure (also holds under chare migration and scheduler priorities; see internal/sim tests)",
			equivalent, seeds))
}
