package core_test

// Cooperative-cancellation suite for the extraction pipeline: Options.Context
// must abort Extract at stage boundaries, between worker chunks, at enforce
// rounds and between ordered phases — and must never perturb the output of an
// extraction that runs to completion (the determinism guarantee the result
// cache keys on).

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"charmtrace/internal/apps/jacobi"
	"charmtrace/internal/core"
	"charmtrace/internal/trace"
	"charmtrace/internal/viz"
)

// countdownCtx is a context.Context whose Err flips to context.Canceled on
// the k-th poll, permanently. It makes cancellation deterministic: instead of
// racing a timer against the pipeline, a test dials in exactly which
// cancellation checkpoint trips.
type countdownCtx struct {
	remaining atomic.Int64
	done      chan struct{}
	closeOnce sync.Once
}

func newCountdownCtx(polls int64) *countdownCtx {
	c := &countdownCtx{done: make(chan struct{})}
	c.remaining.Store(polls)
	return c
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}       { return c.done }
func (c *countdownCtx) Value(any) any               { return nil }
func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		c.closeOnce.Do(func() { close(c.done) })
		return context.Canceled
	}
	return nil
}

// polls reports how many Err calls were consumed out of an initial budget.
func (c *countdownCtx) polls(budget int64) int64 { return budget - c.remaining.Load() }

// TestExtractContextPlumbingIsInert: an extraction that never cancels is
// byte-identical to one with no context attached, at sequential and parallel
// worker counts — the cancellation plumbing only observes.
func TestExtractContextPlumbingIsInert(t *testing.T) {
	tr, err := jacobi.Trace(jacobi.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bare := core.DefaultOptions()
	bare.Parallelism = 1
	want, err := core.Extract(tr, bare)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		opt := core.DefaultOptions()
		opt.Parallelism = par
		opt.Context = context.Background()
		got, err := core.Extract(tr, opt)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if viz.Logical(got) != viz.Logical(want) {
			t.Errorf("parallelism %d: output with context attached differs from bare run", par)
		}
	}
}

// TestExtractCancelsAtEveryCheckpoint: tripping the context at the k-th
// cancellation poll, for a spread of k across the whole pipeline, always
// aborts Extract with context.Canceled and no structure; an untripped
// countdown runs to completion. This pins both directions of the contract:
// every checkpoint aborts, and only cancellation aborts.
func TestExtractCancelsAtEveryCheckpoint(t *testing.T) {
	tr, err := jacobi.Trace(jacobi.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Parallelism = 4

	// Budget pass: count how many polls a full run consumes.
	const budget = int64(1) << 30
	probe := newCountdownCtx(budget)
	opt.Context = probe
	if _, err := core.Extract(tr, opt); err != nil {
		t.Fatalf("probe run failed: %v", err)
	}
	total := probe.polls(budget)
	if total < 10 {
		t.Fatalf("pipeline polled cancellation only %d times; checkpoints are missing", total)
	}

	ks := []int64{1, 2, 3, 5, total / 4, total / 2, total - 1}
	for _, k := range ks {
		if k < 1 || k >= total {
			continue
		}
		ctx := newCountdownCtx(k)
		opt.Context = ctx
		s, err := core.Extract(tr, opt)
		if err == nil {
			t.Fatalf("k=%d/%d: extraction completed despite cancellation", k, total)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("k=%d: error %v does not wrap context.Canceled", k, err)
		}
		if s != nil {
			t.Fatalf("k=%d: cancelled extraction leaked a structure", k)
		}
	}
}

// TestExtractPreCancelledFailsFast: a context cancelled before the call
// aborts at the first stage boundary, not after burning a full extraction.
func TestExtractPreCancelledFailsFast(t *testing.T) {
	tr, err := jacobi.Trace(jacobi.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := core.DefaultOptions()
	opt.Context = ctx
	start := time.Now()
	if _, err := core.Extract(tr, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	// Generous bound: the abort must not have run the pipeline. The jacobi
	// extraction itself takes milliseconds, so only a hang is caught here;
	// the checkpoint sweep above is the precise latency guarantee.
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("pre-cancelled Extract took %v", d)
	}
}

// TestExtractDeadlineExceededPropagates: a deadline expiry surfaces as
// context.DeadlineExceeded, which the serving layer maps to 504.
func TestExtractDeadlineExceededPropagates(t *testing.T) {
	tr, err := jacobi.Trace(jacobi.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	opt := core.DefaultOptions()
	opt.Context = ctx
	if _, err := core.Extract(tr, opt); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
}

// TestExtractBatchCancelled: a cancelled batch fails with the cancellation
// error instead of extracting the remaining traces.
func TestExtractBatchCancelled(t *testing.T) {
	tr, err := jacobi.Trace(jacobi.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := core.DefaultOptions()
	opt.Context = ctx
	if _, err := core.ExtractBatch([]*trace.Trace{tr, tr, tr}, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("batch error %v does not wrap context.Canceled", err)
	}
}
