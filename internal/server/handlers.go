package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"

	"charmtrace/internal/core"
	"charmtrace/internal/metrics"
	"charmtrace/internal/query"
	"charmtrace/internal/resultcache"
	"charmtrace/internal/structdiff"
	"charmtrace/internal/telemetry"
	"charmtrace/internal/trace"
	"charmtrace/internal/tracefile"
)

// traceSummary is the JSON shape shared by upload, get-trace and list.
type traceSummary struct {
	Digest string `json:"digest"`
	Bytes  int64  `json:"bytes"`
	NumPE  int    `json:"num_pe"`
	Events int    `json:"events"`
	Blocks int    `json:"blocks"`
	Chares int    `json:"chares"`
	Idles  int    `json:"idles"`
}

func summarize(digest string, size int64, tr *trace.Trace) traceSummary {
	return traceSummary{
		Digest: digest,
		Bytes:  size,
		NumPE:  tr.NumPE,
		Events: len(tr.Events),
		Blocks: len(tr.Blocks),
		Chares: len(tr.Chares),
		Idles:  len(tr.Idles),
	}
}

// countingWriter tallies bytes written through it.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// handleUpload ingests a trace: the body (text or binary, auto-detected) is
// streamed through the decoder, the SHA-256 content digest, and — when a
// data directory is configured — a spool file that is atomically renamed to
// its content address, all in one pass. Uploads above MaxUploadBytes map to
// 413, malformed traces to 400.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	s.uploads.Add(1)
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)

	sink := &countingWriter{w: io.Discard}
	var spool *os.File
	if dir := s.tracesDir(); dir != "" {
		f, err := os.CreateTemp(dir, ".upload-*")
		if err != nil {
			httpError(w, err)
			return
		}
		spool = f
		sink.w = f
		defer func() {
			if spool != nil {
				spool.Close()
				os.Remove(spool.Name())
			}
		}()
	}

	tr, digest, err := tracefile.ReadAutoDigest(io.TeeReader(body, sink))
	if err != nil {
		httpError(w, err)
		return
	}
	if spool != nil {
		if err := spool.Close(); err != nil {
			httpError(w, err)
			return
		}
		dst := filepath.Join(s.tracesDir(), digest+".trace")
		if _, statErr := os.Stat(dst); statErr == nil {
			os.Remove(spool.Name()) // duplicate content, keep the original
		} else if err := os.Rename(spool.Name(), dst); err != nil {
			os.Remove(spool.Name())
			spool = nil
			httpError(w, err)
			return
		}
		spool = nil
	}
	s.registerTrace(digest, tr, sink.n)
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, summarize(digest, sink.n, tr))
}

// listEntry is one GET /v1/traces row. The structure fields are present
// only when a cached result exists on disk: they come from the O(phases)
// summary tier (no trace decode, no extraction), so clients can size LOD
// and query requests without a per-trace probe round-trip.
type listEntry struct {
	Digest    string `json:"digest"`
	Bytes     int64  `json:"bytes"`
	NumPhases *int   `json:"num_phases,omitempty"`
	MaxStep   *int32 `json:"max_step,omitempty"`
	Events    *int   `json:"events,omitempty"`
}

// handleList returns every known trace, sorted by digest, each enriched
// from the summary tier when a cached .cstr exists under either preset.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	digests := make([]string, 0, len(s.traces))
	sizes := make(map[string]int64, len(s.traces))
	for d, te := range s.traces {
		digests = append(digests, d)
		sizes[d] = te.bytes
	}
	s.mu.RUnlock()
	sort.Strings(digests)
	fps := []string{core.DefaultOptions().Fingerprint(), core.MessagePassingOptions().Fingerprint()}
	out := struct {
		Traces []listEntry `json:"traces"`
	}{Traces: make([]listEntry, 0, len(digests))}
	for _, d := range digests {
		e := listEntry{Digest: d, Bytes: sizes[d]}
		for _, fp := range fps {
			sum, err := s.cache.ReadSummary(resultcache.KeyID(d, fp), fp)
			if err != nil {
				continue
			}
			np, ms, ev := len(sum.Phases), sum.MaxStep, sum.NumEvents
			e.NumPhases, e.MaxStep, e.Events = &np, &ms, &ev
			break
		}
		out.Traces = append(out.Traces, e)
	}
	writeJSON(w, out)
}

// handleTrace returns one trace's summary, loading it from disk if needed.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	if s.notModified(w, r, digest, "") {
		return
	}
	tr, err := s.lookupTrace(r.Context(), digest)
	if err != nil {
		httpError(w, err)
		return
	}
	s.mu.RLock()
	size := s.traces[digest].bytes
	s.mu.RUnlock()
	writeJSON(w, summarize(digest, size, tr))
}

// phaseJSON is one phase row of a structure response. Every field is
// preserved by the structure codec, which is what keeps cached responses
// byte-identical to fresh ones.
type phaseJSON struct {
	ID           int32 `json:"id"`
	Runtime      bool  `json:"runtime"`
	Leap         int32 `json:"leap"`
	Offset       int32 `json:"offset"`
	MaxLocalStep int32 `json:"max_local_step"`
	FirstStep    int32 `json:"first_step"`
	LastStep     int32 `json:"last_step"`
	Chares       int   `json:"chares"`
	Events       int   `json:"events"`
}

// structureResponse is the /structure payload.
type structureResponse struct {
	Digest      string      `json:"digest"`
	Fingerprint string      `json:"fingerprint"`
	Events      int         `json:"events"`
	NumPhases   int         `json:"num_phases"`
	MaxStep     int32       `json:"max_step"`
	DAGEdges    int         `json:"dag_edges"`
	Phases      []phaseJSON `json:"phases"`
}

// handleStructure extracts (or recalls) the logical structure and returns
// the phase table.
func (s *Server) handleStructure(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	opt, err := s.extractOptions(r)
	if err != nil {
		httpError(w, err)
		return
	}
	spec, useQuery, err := query.SpecFromParams(query.SelectStructure, r.URL.Query())
	if err != nil {
		httpError(w, err)
		return
	}
	if s.notModified(w, r, digest, opt.Fingerprint()) {
		return
	}
	if useQuery {
		s.serveQuery(w, r, digest, opt, spec)
		return
	}
	if resp, ok := s.serveStructureFast(r.Context(), digest, opt); ok {
		writeJSON(w, resp)
		return
	}
	st, err := s.structureFor(r.Context(), digest, opt)
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, structureResponseOf(digest, opt.Fingerprint(), st))
}

// serveStructureFast is the zero-copy serving path for the phase table. A
// memory hit renders from the resident structure as always; a memory miss
// over a matching disk entry renders from the entry's streaming summary —
// no trace load, no full DecodeStructure, no extraction slot — which is
// what makes the first post-restart /structure read O(phases) instead of
// O(events). ok=false (unknown digest, no disk entry, corrupt or stale
// entry) falls back to the full structureFor path, whose read self-heals
// bad entries. The two render paths are byte-identical (pinned by the
// serving tests): every response field is preserved by the codec's phase
// table.
func (s *Server) serveStructureFast(ctx context.Context, digest string, opt core.Options) (structureResponse, bool) {
	s.mu.RLock()
	known := s.traces[digest] != nil
	s.mu.RUnlock()
	if !known {
		return structureResponse{}, false
	}
	fp := opt.Fingerprint()
	key := resultcache.KeyID(digest, fp)
	resultcache.RecordKey(ctx, key)
	if st, ok := s.cache.Lookup(digest, opt); ok {
		resultcache.RecordOutcome(ctx, resultcache.OutcomeMem)
		return structureResponseOf(digest, fp, st), true
	}
	sum, err := s.cache.ReadSummary(key, fp)
	if err != nil {
		return structureResponse{}, false
	}
	resultcache.RecordOutcome(ctx, resultcache.OutcomeDisk)
	resp := structureResponse{
		Digest:      digest,
		Fingerprint: fp,
		Events:      sum.NumEvents,
		NumPhases:   len(sum.Phases),
		MaxStep:     sum.MaxStep,
		DAGEdges:    sum.DAGEdges,
		Phases:      make([]phaseJSON, 0, len(sum.Phases)),
	}
	for i := range sum.Phases {
		p := &sum.Phases[i]
		resp.Phases = append(resp.Phases, phaseJSON{
			ID: int32(i), Runtime: p.Runtime, Leap: p.Leap, Offset: p.Offset,
			MaxLocalStep: p.MaxLocalStep, FirstStep: p.Offset, LastStep: p.Offset + p.MaxLocalStep,
			Chares: p.Chares, Events: p.Events,
		})
	}
	return resp, true
}

// structureResponseOf renders the /structure payload from a decoded or
// freshly extracted structure.
func structureResponseOf(digest, fp string, st *core.Structure) structureResponse {
	resp := structureResponse{
		Digest:      digest,
		Fingerprint: fp,
		Events:      len(st.Trace.Events),
		NumPhases:   st.NumPhases(),
		MaxStep:     st.MaxStep(),
		DAGEdges:    st.DAG.NumEdges(),
		Phases:      make([]phaseJSON, 0, st.NumPhases()),
	}
	for i := range st.Phases {
		p := &st.Phases[i]
		lo, hi := p.GlobalSpan()
		resp.Phases = append(resp.Phases, phaseJSON{
			ID: p.ID, Runtime: p.Runtime, Leap: p.Leap, Offset: p.Offset,
			MaxLocalStep: p.MaxLocalStep, FirstStep: lo, LastStep: hi,
			Chares: len(p.Chares), Events: len(p.Events),
		})
	}
	return resp
}

// stepJSON is one event on a chare's logical timeline.
type stepJSON struct {
	Event     int32  `json:"event"`
	Kind      string `json:"kind"`
	Step      int32  `json:"step"`
	Phase     int32  `json:"phase"`
	LocalStep int32  `json:"local_step"`
}

// chareTimeline is one chare's logical timeline.
type chareTimeline struct {
	Chare    int32      `json:"chare"`
	Name     string     `json:"name"`
	Timeline []stepJSON `json:"timeline"`
}

// handleSteps returns per-chare logical timelines: each chare's events in
// logical order with their (phase, local step, global step) positions. An
// optional ?chare=<id> narrows to one chare.
func (s *Server) handleSteps(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	opt, err := s.extractOptions(r)
	if err != nil {
		httpError(w, err)
		return
	}
	spec, useQuery, err := query.SpecFromParams(query.SelectSteps, r.URL.Query())
	if err != nil {
		httpError(w, err)
		return
	}
	if s.notModified(w, r, digest, opt.Fingerprint()) {
		return
	}
	if useQuery {
		s.serveQuery(w, r, digest, opt, spec)
		return
	}
	st, err := s.structureFor(r.Context(), digest, opt)
	if err != nil {
		httpError(w, err)
		return
	}
	tr := st.Trace
	only := int32(-1)
	if v := r.URL.Query().Get("chare"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &only); err != nil || only < 0 || int(only) >= len(tr.Chares) {
			httpError(w, fmt.Errorf("%w: chare %q out of range", errBadRequest, v))
			return
		}
	}
	resp := struct {
		Digest      string          `json:"digest"`
		Fingerprint string          `json:"fingerprint"`
		MaxStep     int32           `json:"max_step"`
		Chares      []chareTimeline `json:"chares"`
	}{Digest: digest, Fingerprint: opt.Fingerprint(), MaxStep: st.MaxStep()}
	for ci := range tr.Chares {
		c := trace.ChareID(ci)
		if only >= 0 && int32(ci) != only {
			continue
		}
		ct := chareTimeline{Chare: int32(ci), Name: tr.Chares[ci].Name}
		for _, e := range st.EventsOfChare(c) {
			ct.Timeline = append(ct.Timeline, stepJSON{
				Event: int32(e), Kind: tr.Events[e].Kind.String(),
				Step: st.Step[e], Phase: st.PhaseOf[e], LocalStep: st.LocalStep[e],
			})
		}
		resp.Chares = append(resp.Chares, ct)
	}
	writeJSON(w, resp)
}

// chareMetrics aggregates the §4 metrics over one chare's events.
type chareMetrics struct {
	Chare                int32  `json:"chare"`
	Name                 string `json:"name"`
	Events               int    `json:"events"`
	IdleExperienced      int64  `json:"idle_experienced"`
	DifferentialDuration int64  `json:"differential_duration"`
	Imbalance            int64  `json:"imbalance"`
}

// handleMetrics computes the Section 4 metrics on the recovered structure
// and aggregates them per chare, with the per-phase imbalance table.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	opt, err := s.extractOptions(r)
	if err != nil {
		httpError(w, err)
		return
	}
	spec, useQuery, err := query.SpecFromParams(query.SelectMetrics, r.URL.Query())
	if err != nil {
		httpError(w, err)
		return
	}
	if s.notModified(w, r, digest, opt.Fingerprint()) {
		return
	}
	if useQuery {
		s.serveQuery(w, r, digest, opt, spec)
		return
	}
	st, err := s.structureFor(r.Context(), digest, opt)
	if err != nil {
		httpError(w, err)
		return
	}
	rep := metrics.Compute(st)
	tr := st.Trace
	perChare := make([]chareMetrics, len(tr.Chares))
	for ci := range tr.Chares {
		perChare[ci] = chareMetrics{Chare: int32(ci), Name: tr.Chares[ci].Name}
	}
	for e := range tr.Events {
		cm := &perChare[tr.Events[e].Chare]
		cm.Events++
		cm.IdleExperienced += int64(rep.IdleExperienced[e])
		cm.DifferentialDuration += int64(rep.DifferentialDuration[e])
		cm.Imbalance += int64(rep.Imbalance[e])
	}
	type phaseImbalance struct {
		Phase     int32 `json:"phase"`
		Imbalance int64 `json:"imbalance"`
	}
	resp := struct {
		Digest         string           `json:"digest"`
		Fingerprint    string           `json:"fingerprint"`
		Chares         []chareMetrics   `json:"chares"`
		PhaseImbalance []phaseImbalance `json:"phase_imbalance"`
	}{Digest: digest, Fingerprint: opt.Fingerprint(), Chares: perChare}
	for p, imb := range rep.PhaseImbalance {
		resp.PhaseImbalance = append(resp.PhaseImbalance, phaseImbalance{Phase: int32(p), Imbalance: int64(imb)})
	}
	writeJSON(w, resp)
}

// handleStructDiff compares the recovered structures of two cached traces
// (?a=<digest>&b=<digest>, same option parameters as /structure applied to
// both sides).
func (s *Server) handleStructDiff(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	da, db := q.Get("a"), q.Get("b")
	if da == "" || db == "" {
		httpError(w, fmt.Errorf("%w: need a=<digest> and b=<digest>", errBadRequest))
		return
	}
	opt, err := s.extractOptions(r)
	if err != nil {
		httpError(w, err)
		return
	}
	sa, err := s.structureFor(r.Context(), da, opt)
	if err != nil {
		httpError(w, err)
		return
	}
	sb, err := s.structureFor(r.Context(), db, opt)
	if err != nil {
		httpError(w, err)
		return
	}
	diff, err := structdiff.Compare(sa, sb)
	if err != nil {
		httpError(w, fmt.Errorf("%w: %s", errBadRequest, err))
		return
	}
	writeJSON(w, struct {
		A           string           `json:"a"`
		B           string           `json:"b"`
		Fingerprint string           `json:"fingerprint"`
		Equivalent  bool             `json:"equivalent"`
		Report      string           `json:"report"`
		Diff        *structdiff.Diff `json:"diff"`
	}{A: da, B: db, Fingerprint: opt.Fingerprint(), Equivalent: diff.Empty(), Report: diff.String(), Diff: diff})
}

// handleStats exports the server-wide registry — request latencies, cache
// hit/miss/evict counters, in-flight gauge, aggregated pipeline stage
// metrics — in the versioned StatsExport schema. ?reset=1 (requires
// -debug-unsafe) returns the snapshot and then zeroes every metric in
// place, so cached handles keep counting from zero.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	reset, allowed := s.resetRequested(w, r)
	if reset && !allowed {
		return
	}
	e := telemetry.ExportRegistry(s.reg, "charmd", core.StageOrder)
	if s.cfg.NodeName != "" {
		e.Labels = map[string]string{"node": s.cfg.NodeName}
	}
	if s.collector != nil {
		e.SpanCount = s.collector.Len()
		e.SpansDropped = s.collector.Dropped()
	}
	if reset {
		s.reg.Reset()
	}
	w.Header().Set("Content-Type", "application/json")
	e.Write(w)
}

// handleSelfTrace exports the analyzer's own spans as a Chrome trace-event
// file (open at ui.perfetto.dev). Only available with Config.SelfTrace.
// ?reset=1 (requires -debug-unsafe) returns the spans recorded so far and
// then clears the collector.
func (s *Server) handleSelfTrace(w http.ResponseWriter, r *http.Request) {
	if s.collector == nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprintln(w, `{"error":"self-tracing disabled; start charmd with -self-trace"}`)
		return
	}
	reset, allowed := s.resetRequested(w, r)
	if reset && !allowed {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.collector.WriteChromeTrace(w)
	if reset {
		s.collector.Reset()
	}
}
