// Package lassen is a communication-skeleton proxy of the LASSEN wavefront
// propagation mini-app used in Section 6.2. Space is a regular Cartesian
// grid of cells decomposed over sub-domains; a wavefront expands from a
// corner source one cell-ring per iteration, and each sub-domain's compute
// time is proportional to the number of its cells the front currently
// crosses. Early iterations therefore concentrate work in one sub-domain
// (Figure 21); as the front grows, more sub-domains share it (Figure 23),
// and a finer decomposition splits the front into smaller pieces whose peak
// differential duration drops proportionally (Figure 22).
//
// Per iteration the Charm++ variant runs: a point-to-point phase to grid
// neighbours (whose message creation order alternates by iteration parity,
// as the paper observed), a short two-step control phase in which every
// chare invokes itself (the control passes through unrecorded SDAG
// machinery, so the self-invocation appears as a fresh source partition),
// and an allreduce of the remaining front size. The MPI variant runs the
// exchange plus the allreduce.
package lassen

import (
	"charmtrace/internal/mpisim"
	"charmtrace/internal/sim"
	"charmtrace/internal/trace"
)

// Config parameterizes a run.
type Config struct {
	// Cells is the edge of the global cell grid (Cells x Cells domain).
	Cells int
	// GridX and GridY are the sub-domain grid dimensions: GridX*GridY
	// chares (or ranks). The paper's runs decompose the same domain into 8
	// (4x2) and 64 (8x8) pieces.
	GridX, GridY int
	// NumPE is the processor count (Charm++ variant).
	NumPE int
	// Iterations is the number of front-advance steps.
	Iterations int
	// CellCost is the compute time per active cell.
	CellCost sim.Time
	// BaseCost is the fixed per-iteration compute time.
	BaseCost sim.Time
	// Seed feeds the network jitter.
	Seed int64
	// Scatter places chare (x, y) on PE (x+y)%NumPE instead of the default
	// block mapping. Overdecomposition only spreads the wavefront's work if
	// the placement interleaves the pieces along both the row and column
	// segments of the front (the effect Charm++ load balancing achieves);
	// the 64-chare configuration uses it.
	Scatter bool
}

// DefaultConfig is the paper's 8-processor setup with an 8-chare (4x2)
// decomposition; FineConfig is the 64-chare one.
func DefaultConfig() Config {
	return Config{
		Cells: 32, GridX: 4, GridY: 2, NumPE: 8, Iterations: 6,
		CellCost: 40, BaseCost: 100, Seed: 1,
	}
}

// FineConfig is the 64-chare (8x8) decomposition of the same domain.
func FineConfig() Config {
	cfg := DefaultConfig()
	cfg.GridX, cfg.GridY = 8, 8
	cfg.Scatter = true
	return cfg
}

// activeCells counts the cells of a sub-domain crossed by the front ring
// at radius r (Chebyshev ring: cells with max(|x|,|y|) == r from the origin
// corner).
func activeCells(cfg Config, sub, r int) int {
	sideX, sideY := cfg.Cells/cfg.GridX, cfg.Cells/cfg.GridY
	sx, sy := (sub%cfg.GridX)*sideX, (sub/cfg.GridX)*sideY
	count := 0
	for y := sy; y < sy+sideY; y++ {
		for x := sx; x < sx+sideX; x++ {
			cheb := x
			if y > cheb {
				cheb = y
			}
			if cheb == r {
				count++
			}
		}
	}
	return count
}

// gridNeighbors returns the 4-connected neighbours of sub-domain i, in an
// order alternating with iteration parity — the paper observed LASSEN's
// point-to-point phase structure alternating because the message-creation
// data structures alternate.
func gridNeighbors(i int, cfg Config, iter int) []int {
	gx, gy := cfg.GridX, cfg.GridY
	x, y := i%gx, i/gx
	var out []int
	add := func(nx, ny int) {
		if nx >= 0 && nx < gx && ny >= 0 && ny < gy {
			out = append(out, ny*gx+nx)
		}
	}
	if iter%2 == 0 {
		add(x+1, y)
		add(x, y+1)
		add(x-1, y)
		add(x, y-1)
	} else {
		add(x, y-1)
		add(x-1, y)
		add(x, y+1)
		add(x+1, y)
	}
	return out
}

// state is per-chare simulation state for the Charm++ variant.
type state struct {
	iter   int
	fronts int
}

// CharmTrace runs the Charm++ variant.
func CharmTrace(cfg Config) (*trace.Trace, error) {
	n := cfg.GridX * cfg.GridY
	simCfg := sim.DefaultConfig(cfg.NumPE)
	simCfg.Seed = cfg.Seed
	rt := sim.New(simCfg)
	var placement func(i int) int
	if cfg.Scatter {
		placement = func(i int) int { return (i%cfg.GridX + i/cfg.GridX) % cfg.NumPE }
	}
	arr := rt.NewArray("lassen", n, placement, func(i int) any { return &state{} })

	var front, selfCtl, doneCtl, resume sim.EntryRef
	var red *sim.Reduction

	compute := func(ctx *sim.Ctx, st *state) {
		ctx.Compute(cfg.BaseCost + cfg.CellCost*sim.Time(activeCells(cfg, ctx.Index(), st.iter)))
	}
	sendFront := func(ctx *sim.Ctx, st *state) {
		compute(ctx, st)
		for _, nb := range gridNeighbors(ctx.Index(), cfg, st.iter) {
			ctx.Send(arr.At(nb), front, nil)
		}
	}

	begin := arr.RegisterSDAG("advance", 0, false, func(ctx *sim.Ctx, m sim.Message) {
		sendFront(ctx, ctx.State().(*state))
	})
	front = arr.RegisterSDAG("recvFront", 2, true, func(ctx *sim.Ctx, m sim.Message) {
		st := ctx.State().(*state)
		st.fronts++
		ctx.Compute(10)
		if st.fronts == len(gridNeighbors(ctx.Index(), cfg, st.iter)) {
			st.fronts = 0
			// SDAG control (unrecorded) schedules the control serial.
			ctx.SendUntraced(arr.At(ctx.Index()), selfCtl, nil)
		}
	})
	// The short control phase: each chare invokes itself with a pure
	// control message to move the computation forward.
	selfCtl = arr.RegisterSDAG("control", 4, false, func(ctx *sim.Ctx, m sim.Message) {
		ctx.Compute(20)
		ctx.Send(arr.At(ctx.Index()), doneCtl, nil)
	})
	doneCtl = arr.RegisterSDAG("controlDone", 5, true, func(ctx *sim.Ctx, m sim.Message) {
		st := ctx.State().(*state)
		ctx.Compute(20)
		remaining := float64(cfg.Iterations - st.iter)
		ctx.Contribute(red, remaining)
	})
	resume = arr.RegisterSDAG("resume", 7, true, func(ctx *sim.Ctx, m sim.Message) {
		st := ctx.State().(*state)
		st.iter++
		if st.iter >= cfg.Iterations {
			return
		}
		sendFront(ctx, st)
	})
	red = rt.NewReduction(arr, sim.Max, sim.BroadcastCallback(resume))

	for i := 0; i < n; i++ {
		rt.Spawn(arr.At(i), begin, nil)
	}
	return rt.Run()
}

// MustCharmTrace is CharmTrace that panics on error.
func MustCharmTrace(cfg Config) *trace.Trace {
	t, err := CharmTrace(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// MPITrace runs the MPI variant: one rank per sub-domain, a neighbour
// exchange plus allreduce per iteration (Figures 20a and 20c).
func MPITrace(cfg Config) (*trace.Trace, error) {
	n := cfg.GridX * cfg.GridY
	mpiCfg := mpisim.DefaultConfig(n)
	mpiCfg.Seed = cfg.Seed
	return mpisim.Run(mpiCfg, func(r *mpisim.Rank) {
		for it := 0; it < cfg.Iterations; it++ {
			r.Compute(cfg.BaseCost + cfg.CellCost*sim.Time(activeCells(cfg, r.ID(), it)))
			nbs := gridNeighbors(r.ID(), cfg, it)
			for _, nb := range nbs {
				r.Send(nb, it, nil)
			}
			for _, nb := range nbs {
				r.Recv(nb, it)
			}
			r.Allreduce(float64(cfg.Iterations-it), mpisim.Max)
		}
	})
}

// MustMPITrace is MPITrace that panics on error.
func MustMPITrace(cfg Config) *trace.Trace {
	t, err := MPITrace(cfg)
	if err != nil {
		panic(err)
	}
	return t
}
