package structdiff

import (
	"strings"
	"testing"

	"charmtrace/internal/apps/jacobi"
	"charmtrace/internal/core"
)

func structure(t *testing.T, cfg jacobi.Config, opt core.Options) *core.Structure {
	t.Helper()
	s, err := core.Extract(jacobi.MustTrace(cfg), opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestIdenticalStructuresCompareEqual(t *testing.T) {
	a := structure(t, jacobi.DefaultConfig(), core.DefaultOptions())
	b := structure(t, jacobi.DefaultConfig(), core.DefaultOptions())
	d, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Fatalf("identical structures differ:\n%s", d)
	}
	if !strings.Contains(d.String(), "equivalent") {
		t.Fatal("empty diff renders wrong")
	}
}

// TestSeedInvariance is the headline use: different seeds permute the
// physical schedule, but the recovered logical structure is equivalent.
func TestSeedInvariance(t *testing.T) {
	cfgA := jacobi.DefaultConfig()
	cfgB := jacobi.DefaultConfig()
	cfgB.Seed = 99
	a := structure(t, cfgA, core.DefaultOptions())
	b := structure(t, cfgB, core.DefaultOptions())
	// The raw traces differ...
	timesDiffer := false
	for i := range a.Trace.Events {
		if a.Trace.Events[i].Time != b.Trace.Events[i].Time {
			timesDiffer = true
			break
		}
	}
	if !timesDiffer {
		t.Fatal("seeds produced identical traces; test ineffective")
	}
	// ...but the logical structures are equivalent.
	d, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Fatalf("logical structure not seed-invariant:\n%s", d)
	}
}

func TestDetectsOptionDivergence(t *testing.T) {
	cfg := jacobi.DefaultConfig()
	cfg.Grid = 8
	cfg.Iterations = 2
	a := structure(t, cfg, core.DefaultOptions())
	opt := core.DefaultOptions()
	opt.Reorder = false
	b := structure(t, cfg, opt)
	d, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Empty() {
		t.Fatal("reordering ablation produced an equivalent structure; diff too weak")
	}
	if len(d.Chares) == 0 {
		t.Fatal("diff did not localize any chare divergence")
	}
	if !strings.Contains(d.String(), "diverge") && !strings.Contains(d.String(), "phase") {
		t.Fatalf("diff report uninformative:\n%s", d)
	}
}

func TestRejectsDifferentPopulations(t *testing.T) {
	small := jacobi.DefaultConfig()
	big := jacobi.DefaultConfig()
	big.Grid = 8
	a := structure(t, small, core.DefaultOptions())
	b := structure(t, big, core.DefaultOptions())
	if _, err := Compare(a, b); err == nil {
		t.Fatal("different populations accepted")
	}
}
