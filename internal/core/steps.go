package core

import (
	"runtime"
	"slices"
	"sync"

	"charmtrace/internal/telemetry"
	"charmtrace/internal/trace"
)

// The ordering stage works on fragments: a serial block's run of events
// inside one phase. Reordering (§3.2.1) permutes fragments per chare; events
// inside a fragment keep their recorded order, since the order within a
// serial block is determined explicitly by the developer.
//
// Fragments live as struct-of-arrays in the worker lane's scratch
// (laneScratch.frag*): fragment fi of the lane's current phase has canonical
// block fragBlock[fi], initial event fragFirst[fi], w-clock of that event
// fragWInit[fi], and events fragEvents[fragOff[fi]:fragOff[fi+1]]. The
// per-event tables (w, fragOf, place, pos, sendDep, indeg, adjOff, adjCur)
// are shared across lanes in the arena: phases touch disjoint event sets,
// each cell is initialized by its phase before being read, and cross-phase
// lookups are guarded by PhaseOf — so the arrays never need clearing.

// assignSteps runs the ordering stage (§3.2): per-phase w-clock computation,
// per-chare fragment reordering, local step assignment, and global offsets
// from the phase DAG.
func assignSteps(tr *trace.Trace, opt Options, a *atoms, t *tel) *Structure {
	v := a.set.View()
	if !v.Acyclic() {
		a.set.CycleMerge()
		v = a.set.View()
	}
	leap, _ := v.Leaps()
	ar := a.arena

	s := &Structure{
		Trace:       tr,
		Opts:        opt,
		Phases:      make([]Phase, len(v.Parts)),
		DAG:         v.G,
		PhaseOf:     make([]int32, len(tr.Events)),
		LocalStep:   make([]int32, len(tr.Events)),
		Step:        make([]int32, len(tr.Events)),
		chareEvents: make([][]trace.EventID, len(tr.Chares)),
	}
	for i := range s.PhaseOf {
		s.PhaseOf[i] = -1
		s.LocalStep[i] = -1
		s.Step[i] = -1
	}

	// PhaseOf must be complete before any phase is stepped: stepPhase
	// consults it to keep cross-phase sends out of a phase's dependencies.
	for pi := range v.Parts {
		for _, atomID := range v.Parts[pi].Atoms {
			for _, e := range a.set.AtomEvents(atomID) {
				s.PhaseOf[e] = int32(pi)
			}
		}
	}

	// Output layout: every phase's Events and Chares are regions of two flat
	// buffers, with offsets computed up front so parallel workers fill
	// disjoint regions. The regions are full-capacity subslices: an append to
	// one phase's slice after extraction reallocates instead of clobbering
	// its neighbour.
	nParts := len(v.Parts)
	evOff := make([]int32, nParts+1)
	chOff := make([]int32, nParts+1)
	var evTot, chTot int32
	for pi := range v.Parts {
		evOff[pi] = evTot
		chOff[pi] = chTot
		for _, atomID := range v.Parts[pi].Atoms {
			evTot += int32(len(a.set.AtomEvents(atomID)))
		}
		chTot += int32(len(v.Parts[pi].Chares))
	}
	evOff[nParts] = evTot
	chOff[nParts] = chTot
	eventsBuf := make([]trace.EventID, evTot)
	charesBuf := make([]trace.ChareID, chTot)

	// Shared per-event scratch for the ordering stage. timeKey packs
	// timeOrderLess's (time, kind) lexicographic rank into one int64 (kinds
	// are Send=0, Recv=1, and |Time| < 2^62), so the phase-event sort
	// compares one precomputed key instead of re-reading two Event structs;
	// built once here, read-only in the worker lanes.
	ar.timeKey = grow64(ar.timeKey, ar.nEvents)
	for i := range tr.Events {
		ev := &tr.Events[i]
		ar.timeKey[i] = int64(ev.Time)*2 + int64(ev.Kind)
	}
	ar.stepKey = grow64(ar.stepKey, ar.nEvents)
	ar.w = grow32(ar.w, ar.nEvents)
	ar.fragOf = grow32(ar.fragOf, ar.nEvents)
	ar.place = grow32(ar.place, ar.nEvents)
	ar.pos = grow32(ar.pos, ar.nEvents)
	ar.sendDep = growEv(ar.sendDep, ar.nEvents)
	ar.indeg = grow32(ar.indeg, ar.nEvents)
	ar.adjOff = grow32(ar.adjOff, ar.nEvents)
	ar.adjCur = grow32(ar.adjCur, ar.nEvents)

	// orderPhase handles one phase on one worker lane; phases touch disjoint
	// events (and disjoint scratch cells), so the stage parallelizes cleanly
	// (§3.3: "this stage could be parallelized").
	orderPhase := func(pi int, ls *laneScratch) {
		part := &v.Parts[pi]
		ph := &s.Phases[pi]
		ph.ID = int32(pi)
		ph.Runtime = part.Runtime
		ph.Leap = leap[pi]
		ph.Chares = append(charesBuf[chOff[pi]:chOff[pi]:chOff[pi+1]], part.Chares...)

		// The phase's events, sorted by (time, kind, ID) — the timeOrderLess
		// order, compared through the precomputed key.
		events := eventsBuf[evOff[pi]:evOff[pi]:evOff[pi+1]]
		for _, atomID := range part.Atoms {
			events = append(events, a.set.AtomEvents(atomID)...)
		}
		key := ar.timeKey
		slices.SortFunc(events, func(x, y trace.EventID) int {
			if key[x] != key[y] {
				if key[x] < key[y] {
					return -1
				}
				return 1
			}
			return int(x) - int(y)
		})

		// One epoch per phase invalidates every chare-/block-indexed lane
		// table at once.
		ls.epoch++
		phaseW(tr, opt, events, a, ar, ls, s.PhaseOf, int32(pi))
		nf := buildFragments(tr, events, a, ar, ls)
		placed := orderFragments(tr, opt, nf, ar, ls, s.PhaseOf, int32(pi))
		ph.MaxLocalStep = stepPhase(tr, events, placed, s.PhaseOf, int32(pi), s.LocalStep, ar, ls)

		// Output order (local step, chare, ID), packed into one key per
		// event: both components are non-negative int32s, so the pair fits
		// one int64 compare.
		ph.Events = events
		skey := ar.stepKey
		for _, e := range events {
			skey[e] = int64(s.LocalStep[e])<<32 | int64(uint32(tr.Events[e].Chare))
		}
		slices.SortFunc(ph.Events, func(x, y trace.EventID) int {
			if skey[x] != skey[y] {
				if skey[x] < skey[y] {
					return -1
				}
				return 1
			}
			return int(x) - int(y)
		})
	}

	// Pool size: Options.Parallelism, with the deprecated Parallel flag
	// keeping its historical meaning (GOMAXPROCS workers) when Parallelism
	// selects a sequential run.
	workers := opt.Workers()
	if workers == 1 && opt.Parallel {
		workers = runtime.GOMAXPROCS(0)
	}
	ar.ensureLanes(workers)
	recording := t.rec.Enabled()
	parent := t.cur
	if t.prog != nil {
		// Phases are the ordering stage's work items: /debug/flights shows
		// "phases ordered / total" while step assignment runs.
		t.prog.StartLoop(int64(len(v.Parts)))
	}
	// tracedOrderPhase wraps one phase with a span on the given worker
	// lane: per-phase spans are what expose ordering-stage imbalance (one
	// huge phase pinning a lane while the others drain) in a self-trace.
	// Phases are the ordering stage's worker chunks: each one polls the
	// extraction context first, so cancellation skips the remaining phases
	// and Extract discards the partially stepped structure.
	tracedOrderPhase := func(pi, lane int) {
		if t.cancelled() {
			return
		}
		if recording {
			sp := t.rec.StartSpan("order-phase", parent, telemetry.Lane(lane),
				telemetry.Int("phase", int64(pi)),
				telemetry.Int("atoms", int64(len(v.Parts[pi].Atoms))))
			defer t.rec.EndSpan(sp)
		}
		orderPhase(pi, ar.lane(lane))
		if t.prog != nil {
			t.prog.Add(1)
		}
	}
	if workers > 1 && len(v.Parts) > 1 {
		var wg sync.WaitGroup
		// The semaphore slots double as worker-lane numbers, so each
		// phase's span lands on the lane of the worker that ran it — and
		// each running phase borrows that lane's scratch exclusively.
		sem := make(chan int, workers)
		for lane := 1; lane <= workers; lane++ {
			sem <- lane
		}
		for pi := range v.Parts {
			pi := pi
			wg.Add(1)
			lane := <-sem
			go func() {
				defer func() {
					sem <- lane
					wg.Done()
				}()
				tracedOrderPhase(pi, lane)
			}()
		}
		wg.Wait()
	} else {
		for pi := range v.Parts {
			tracedOrderPhase(pi, 1)
		}
	}

	computeOffsets(s, ar)
	for e := range tr.Events {
		if s.PhaseOf[e] >= 0 {
			s.Step[e] = s.Phases[s.PhaseOf[e]].Offset + s.LocalStep[e]
		}
	}
	stitchChareTimelines(s)
	return s
}

// timeOrderLess orders events by time, sends before receives at equal time
// (a message's send never follows its receive), then by ID.
func timeOrderLess(tr *trace.Trace, a, b trace.EventID) bool {
	ea, eb := &tr.Events[a], &tr.Events[b]
	if ea.Time != eb.Time {
		return ea.Time < eb.Time
	}
	if ea.Kind != eb.Kind {
		return ea.Kind == trace.Send
	}
	return a < b
}

// phaseW computes the idealized-replay clock w (§3.2.1) for a phase's
// events, which must be sorted by timeOrderLess, into ar.w.
//
// Task-based rule: the phase's initial sends get w = 0; subsequent sends of
// a serial block count up; a receive gets w_send + 1; sends after a receive
// count up from the receive's w.
//
// Message-passing rule (Figure 9): a receive still gets w_send + 1, but a
// send is pinned after every receive that physically preceded it on its
// timeline: w_send = 1 + max{w_recv | recv before send}, so receives may be
// reordered around the send while the send keeps its position.
//
// The last-w-per-block and max-receive-w-per-chare tables are the lane's
// epoch-marked arrays: a slot is live only when its mark equals the lane's
// current epoch.
func phaseW(tr *trace.Trace, opt Options, events []trace.EventID, a *atoms, ar *extractArena, ls *laneScratch, phaseOf []int32, pi int32) {
	w := ar.w
	epoch := ls.epoch
	for _, e := range events {
		ev := &tr.Events[e]
		cb := a.canonicalBlock(ev.Block)
		var val int32
		if ev.Kind == trace.Recv {
			val = 0
			// The matching send is in this phase (Alg. 1 merges endpoints)
			// and was processed earlier (sends precede receives in time
			// order); the guard covers synthetic cross-phase records.
			if send := tr.MatchingSend(e); send != trace.NoEvent && phaseOf[send] == pi {
				val = w[send] + 1
			}
			if !opt.MessagePassing {
				if ls.lastWMark[cb] == epoch && ls.lastW[cb]+1 > val {
					val = ls.lastW[cb] + 1
				}
			} else {
				if ls.maxRecvMark[ev.Chare] != epoch || val > ls.maxRecvW[ev.Chare] {
					ls.maxRecvW[ev.Chare] = val
					ls.maxRecvMark[ev.Chare] = epoch
				}
			}
		} else { // Send
			if opt.MessagePassing {
				if ls.maxRecvMark[ev.Chare] == epoch {
					val = ls.maxRecvW[ev.Chare] + 1
				}
			} else if ls.lastWMark[cb] == epoch {
				val = ls.lastW[cb] + 1
			}
		}
		w[e] = val
		ls.lastW[cb] = val
		ls.lastWMark[cb] = epoch
	}
}

// buildFragments groups a phase's events by canonical serial block,
// preserving per-block recorded order, into the lane's fragment tables.
// Absorbed block pairs (§2.1) order as one serial block. Returns the
// fragment count; ar.fragOf maps each of the phase's events to its fragment.
func buildFragments(tr *trace.Trace, events []trace.EventID, a *atoms, ar *extractArena, ls *laneScratch) int {
	epoch := ls.epoch
	ls.fragBlock = ls.fragBlock[:0]
	ls.fragChare = ls.fragChare[:0]
	ls.fragWInit = ls.fragWInit[:0]
	ls.fragFirst = ls.fragFirst[:0]
	nf := 0
	for _, e := range events {
		ev := &tr.Events[e]
		canon := a.canonicalBlock(ev.Block)
		var fi int32
		if ls.blockMark[canon] == epoch {
			fi = ls.fragOfBlock[canon]
		} else {
			fi = int32(nf)
			nf++
			ls.blockMark[canon] = epoch
			ls.fragOfBlock[canon] = fi
			ls.fragBlock = append(ls.fragBlock, canon)
			ls.fragChare = append(ls.fragChare, ev.Chare)
			ls.fragWInit = append(ls.fragWInit, ar.w[e])
			ls.fragFirst = append(ls.fragFirst, e)
		}
		ar.fragOf[e] = fi
	}
	// Group the phase's events by fragment: counting sort into fragEvents.
	ls.fragOff = grow32(ls.fragOff, nf+1)
	ls.fragCur = grow32(ls.fragCur, nf)
	cnt := ls.fragCur
	for i := range cnt {
		cnt[i] = 0
	}
	for _, e := range events {
		cnt[ar.fragOf[e]]++
	}
	total := int32(0)
	for i := 0; i < nf; i++ {
		ls.fragOff[i] = total
		total += cnt[i]
		cnt[i] = 0
	}
	ls.fragOff[nf] = total
	ls.fragEvents = growEv(ls.fragEvents, int(total))
	for _, e := range events {
		fi := ar.fragOf[e]
		ls.fragEvents[ls.fragOff[fi]+cnt[fi]] = e
		cnt[fi]++
	}
	return nf
}

// miniHeap is a minimal binary min-heap under a closure comparator, backing
// the ordering stage's deterministic ready queues. Every comparator used
// with it is a total order, so the pop sequence is the sorted order of the
// ready set — independent of push order and heap internals.
type miniHeap[T any] struct {
	items []T
	less  func(a, b T) bool
}

func (h *miniHeap[T]) push(x T) {
	h.items = append(h.items, x)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(h.items[i], h.items[p]) {
			break
		}
		h.items[i], h.items[p] = h.items[p], h.items[i]
		i = p
	}
}

func (h *miniHeap[T]) pop() T {
	it := h.items
	top := it[0]
	n := len(it) - 1
	it[0] = it[n]
	it = it[:n]
	h.items = it
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.less(it[l], it[m]) {
			m = l
		}
		if r < n && h.less(it[r], it[m]) {
			m = r
		}
		if m == i {
			break
		}
		it[i], it[m] = it[m], it[i]
		i = m
	}
	return top
}

// orderFragments orders a phase's fragments (§3.2.1): by the w of the
// fragment's initial event, ties broken by the chare that invoked the serial
// block, then by comparing source fragments one step back (Figure 7), and
// finally by physical time. Without Reorder, fragments order by physical
// time. The placement respects every intra-phase message dependency between
// fragments (a dependency-aware traversal whose ready set is prioritized by
// the comparator); the returned slice is the global placement order, which
// step assignment uses as its scheduling priority.
func orderFragments(tr *trace.Trace, opt Options, nf int, ar *extractArena, ls *laneScratch, phaseOf []int32, pi int32) []int32 {
	fragEvs := func(fi int32) []trace.EventID {
		return ls.fragEvents[ls.fragOff[fi]:ls.fragOff[fi+1]]
	}
	// invoker returns the chare that invoked a fragment: the chare of the
	// send matching its initial receive, or NoChare for send-initial
	// (phase-source) fragments.
	invoker := func(fi int32) trace.ChareID {
		if send := tr.MatchingSend(ls.fragFirst[fi]); send != trace.NoEvent {
			return tr.Events[send].Chare
		}
		return trace.NoChare
	}
	// sourceFrag returns the fragment containing the send that invoked f, if
	// it is in the same phase; -1 otherwise.
	sourceFrag := func(fi int32) int32 {
		if send := tr.MatchingSend(ls.fragFirst[fi]); send != trace.NoEvent && phaseOf[send] == pi {
			return ar.fragOf[send]
		}
		return -1
	}
	// rank orders invoking chares: by the caller-supplied topology rank
	// when one is given (the paper's suggestion that data-topology-aware
	// tie-breaking is more intuitive), by chare ID otherwise.
	rank := func(c trace.ChareID) int32 {
		if opt.ChareRank != nil && c >= 0 && int(c) < len(opt.ChareRank) {
			return opt.ChareRank[c]
		}
		return int32(c)
	}
	// The comparator runs O(log n) times per heap operation, so its inputs
	// (invoking chare, its rank, the source fragment, the initial event's
	// physical time) are memoized into flat per-fragment arrays once; the
	// closures above run once per fragment, never per comparison.
	ls.fragInv = grow32(ls.fragInv, nf)
	ls.fragRank = grow32(ls.fragRank, nf)
	ls.fragSrc = grow32(ls.fragSrc, nf)
	ls.fragTime = growTime(ls.fragTime, nf)
	inv, rnk, src, tim := ls.fragInv, ls.fragRank, ls.fragSrc, ls.fragTime
	for i := int32(0); i < int32(nf); i++ {
		c := invoker(i)
		inv[i], rnk[i], src[i] = int32(c), rank(c), sourceFrag(i)
		tim[i] = tr.Events[ls.fragFirst[i]].Time
	}
	wi := ls.fragWInit
	var cmp func(f, g int32, depth int) int
	cmp = func(f, g int32, depth int) int {
		if wi[f] != wi[g] {
			return int(wi[f]) - int(wi[g])
		}
		if rnk[f] != rnk[g] {
			return int(rnk[f]) - int(rnk[g])
		}
		if inv[f] != inv[g] {
			return int(inv[f]) - int(inv[g])
		}
		if depth < 4 {
			sf, sg := src[f], src[g]
			if sf >= 0 && sg >= 0 && sf != sg {
				if c := cmp(sf, sg, depth+1); c != 0 {
					return c
				}
			}
		}
		return 0
	}
	less := func(f, g int32) bool {
		if opt.Reorder {
			if c := cmp(f, g, 0); c != 0 {
				return c < 0
			}
		}
		if tim[f] != tim[g] {
			return tim[f] < tim[g]
		}
		// Canonical blocks are unique per fragment, making the order total.
		return ls.fragBlock[f] < ls.fragBlock[g]
	}

	// Fragments are placed in a single phase-wide order that respects every
	// intra-phase message dependency between fragments: a Kahn traversal
	// whose ready set is prioritized by the paper's comparator. A plain sort
	// can invert two same-w fragments against an explicit dependency (the
	// invoker tie-break knows nothing about messages between the tied
	// blocks); the dependency-aware traversal only applies the comparator
	// among fragments whose predecessors are already placed.
	//
	// Edges dedup without a map or a sort: one epoch-marked open-addressing
	// probe per candidate edge, keeping the first occurrence of each
	// (source, target) pair. Successor-list order only controls the order
	// tied fragments enter the ready heap, and the heap's comparator is a
	// total order (fragBlock is unique), so the placement is invariant to it.
	eu, evv := ls.edgeU[:0], ls.edgeV[:0]
	nev := len(ls.fragEvents)
	size := 16
	for size < 2*nev {
		size <<= 1
	}
	if cap(ls.edgeKey) < size {
		ls.edgeKey = make([]int64, size)
		ls.edgeMark = make([]int32, size)
		ls.edgeEpoch = 0
	}
	keys := ls.edgeKey[:size]
	marks := ls.edgeMark[:size]
	ls.edgeEpoch++
	if ls.edgeEpoch <= 0 { // epoch wrapped: stale marks could alias it
		clear(ls.edgeMark[:cap(ls.edgeMark)])
		ls.edgeEpoch = 1
	}
	epoch := ls.edgeEpoch
	mask := uint64(size - 1)
	for gi := int32(0); gi < int32(nf); gi++ {
		for _, e := range fragEvs(gi) {
			send := tr.MatchingSend(e)
			if send == trace.NoEvent || phaseOf[send] != pi {
				continue
			}
			si := ar.fragOf[send]
			if si == gi {
				continue
			}
			k := int64(si)<<32 | int64(uint32(gi))
			h := uint64(k)
			h ^= h >> 33
			h *= 0x9e3779b97f4a7c15
			h ^= h >> 29
			i := h & mask
			for {
				if marks[i] != epoch {
					marks[i], keys[i] = epoch, k
					eu = append(eu, si)
					evv = append(evv, gi)
					break
				}
				if keys[i] == k {
					break
				}
				i = (i + 1) & mask
			}
		}
	}
	ls.edgeU, ls.edgeV = eu, evv
	ls.fragIndeg = grow32(ls.fragIndeg, nf)
	ls.fragSuccOff = grow32(ls.fragSuccOff, nf+1)
	ls.fragSuccCur = grow32(ls.fragSuccCur, nf)
	indeg, succOff, succCur := ls.fragIndeg, ls.fragSuccOff, ls.fragSuccCur
	for i := 0; i < nf; i++ {
		indeg[i], succCur[i] = 0, 0
	}
	for i := range eu {
		succCur[eu[i]]++
		indeg[evv[i]]++
	}
	t := int32(0)
	for i := 0; i < nf; i++ {
		succOff[i] = t
		t += succCur[i]
		succCur[i] = 0
	}
	succOff[nf] = t
	ls.fragSucc = grow32(ls.fragSucc, int(t))
	for i := range eu {
		u := eu[i]
		ls.fragSucc[succOff[u]+succCur[u]] = evv[i]
		succCur[u]++
	}

	ready := &miniHeap[int32]{items: ls.fragHeap[:0], less: less}
	for i := int32(0); i < int32(nf); i++ {
		if indeg[i] == 0 {
			ready.push(i)
		}
	}
	out := ls.placed[:0]
	for len(out) < nf {
		if len(ready.items) == 0 {
			// Dependency cycle among fragments (pathological multi-receive
			// blocks): release the earliest-starting blocked fragment. Step
			// assignment only treats intra-fragment and message edges as
			// hard, so a released cycle cannot corrupt the steps.
			best := int32(-1)
			for i := int32(0); i < int32(nf); i++ {
				if indeg[i] > 0 && (best < 0 || less(i, best)) {
					best = i
				}
			}
			indeg[best] = 0
			ready.push(best)
			continue
		}
		f := ready.pop()
		out = append(out, f)
		for _, gi := range ls.fragSucc[succOff[f]:succOff[f+1]] {
			indeg[gi]--
			if indeg[gi] == 0 {
				ready.push(gi)
			}
		}
	}
	ls.fragHeap = ready.items
	ls.placed = out
	return out
}

// stepPhase assigns local logical steps within a phase. The phase's initial
// sources get step 0; every other event gets one over the maximum of the
// events that happened-before it — the prior event along its chare's
// timeline and its matching send when it is a receive.
//
// The hard constraints are the intra-fragment event order and the message
// edges; both point strictly forward in (time, kind) order, so their union
// is always acyclic and the assignment never needs a fallback. The fragment
// placement computed by orderFragments acts as the scheduling priority:
// ready events pop in placement order, which keeps each fragment's events
// together whenever dependencies permit. The pop order restricted to one
// chare IS that chare's timeline, so per-chare steps are strictly
// increasing and every receive lands after its send, by construction —
// which also lets stitchChareTimelines recover the timeline from the steps
// instead of recording pop order per chare.
func stepPhase(tr *trace.Trace, events []trace.EventID, placed []int32, phaseOf []int32, pi int32, localStep []int32, ar *extractArena, ls *laneScratch) int32 {
	// Priority of each event: (fragment placement, position in fragment).
	for pl, fi := range placed {
		for pos, e := range ls.fragEvents[ls.fragOff[fi]:ls.fragOff[fi+1]] {
			ar.place[e] = int32(pl)
			ar.pos[e] = int32(pos)
		}
	}
	// Hard edges: consecutive events of a fragment, and send -> receive.
	// Out-degrees are counted first, then the edges fill a flat adjacency
	// buffer; event e's successors are adj[adjOff[e]:adjCur[e]].
	indeg, adjOff, adjCur := ar.indeg, ar.adjOff, ar.adjCur
	for _, e := range events {
		ar.sendDep[e] = trace.NoEvent
		indeg[e] = 0
		adjOff[e] = 0
	}
	for _, fi := range placed {
		evs := ls.fragEvents[ls.fragOff[fi]:ls.fragOff[fi+1]]
		for i := 0; i+1 < len(evs); i++ {
			adjOff[evs[i]]++
			indeg[evs[i+1]]++
		}
	}
	for _, e := range events {
		if send := tr.MatchingSend(e); send != trace.NoEvent && phaseOf[send] == pi {
			ar.sendDep[e] = send
			adjOff[send]++
			indeg[e]++
		}
	}
	total := int32(0)
	for _, e := range events {
		deg := adjOff[e]
		adjOff[e] = total
		adjCur[e] = total
		total += deg
	}
	ls.adj = growEv(ls.adj, int(total))
	adj := ls.adj
	addEdge := func(from, to trace.EventID) {
		adj[adjCur[from]] = to
		adjCur[from]++
	}
	for _, fi := range placed {
		evs := ls.fragEvents[ls.fragOff[fi]:ls.fragOff[fi+1]]
		for i := 0; i+1 < len(evs); i++ {
			addEdge(evs[i], evs[i+1])
		}
	}
	for _, e := range events {
		if sd := ar.sendDep[e]; sd != trace.NoEvent {
			addEdge(sd, e)
		}
	}

	// Deterministic priority queue over ready events: (place, pos) is unique
	// per event, so the order is total.
	h := &miniHeap[trace.EventID]{items: ls.eventHeap[:0], less: func(a, b trace.EventID) bool {
		if ar.place[a] != ar.place[b] {
			return ar.place[a] < ar.place[b]
		}
		return ar.pos[a] < ar.pos[b]
	}}
	for _, e := range events {
		if indeg[e] == 0 {
			h.push(e)
		}
	}
	epoch := ls.epoch
	var maxStep int32
	for len(h.items) > 0 {
		e := h.pop()
		ev := &tr.Events[e]
		st := int32(0)
		if ls.chareMark[ev.Chare] == epoch {
			if p := ls.lastStep[ev.Chare]; p+1 > st {
				st = p + 1
			}
		}
		if sd := ar.sendDep[e]; sd != trace.NoEvent {
			if p := localStep[sd]; p+1 > st {
				st = p + 1
			}
		}
		localStep[e] = st
		if st > maxStep {
			maxStep = st
		}
		ls.lastStep[ev.Chare] = st
		ls.chareMark[ev.Chare] = epoch
		for _, n := range adj[adjOff[e]:adjCur[e]] {
			indeg[n]--
			if indeg[n] == 0 {
				h.push(n)
			}
		}
	}
	ls.eventHeap = h.items
	return maxStep
}

// computeOffsets assigns each phase its global step offset: the maximum over
// phase-DAG predecessors of (their offset + their max local step + 1). An
// implementation refinement guards the per-chare uniqueness of global steps:
// if two phases sharing a chare remain unordered and their global spans
// collide, an order edge (earlier initial event first) is inserted and
// offsets are recomputed.
func computeOffsets(s *Structure, ar *extractArena) {
	for round := 0; round < 64; round++ {
		order, ok := s.DAG.TopoSort()
		if !ok {
			// Cannot happen: edges are only added between unordered phases.
			break
		}
		for i := range s.Phases {
			s.Phases[i].Offset = 0
		}
		for _, p := range order {
			ph := &s.Phases[p]
			for _, q := range s.DAG.Adj[p] {
				if need := ph.Offset + ph.MaxLocalStep + 1; s.Phases[q].Offset < need {
					s.Phases[q].Offset = need
				}
			}
		}
		if !fixChareCollision(s, ar) {
			return
		}
	}
}

// fixChareCollision finds one pair of unordered phases that share a chare
// and collide in global steps, adds an order edge, and reports whether it
// did. Phases connected in the DAG can never collide (the offset rule
// separates them), so the added edge cannot create a cycle. The per-chare
// span lists are counting-sorted into the arena's flat span tables; chares
// are scanned in ascending ID order, so the edge chosen is deterministic.
func fixChareCollision(s *Structure, ar *extractArena) bool {
	nc := ar.nChares
	ar.spanOff = grow32(ar.spanOff, nc+1)
	ar.spanCur = grow32(ar.spanCur, nc)
	cnt := ar.spanCur
	for i := 0; i < nc; i++ {
		cnt[i] = 0
	}
	total := int32(0)
	for i := range s.Phases {
		for _, c := range s.Phases[i].Chares {
			cnt[c]++
		}
		total += int32(len(s.Phases[i].Chares))
	}
	off := ar.spanOff
	t := int32(0)
	for i := 0; i < nc; i++ {
		off[i] = t
		t += cnt[i]
		cnt[i] = 0
	}
	off[nc] = t
	ar.spanPhase = grow32(ar.spanPhase, int(total))
	ar.spanLo = grow32(ar.spanLo, int(total))
	ar.spanHi = grow32(ar.spanHi, int(total))
	for i := range s.Phases {
		ph := &s.Phases[i]
		lo, hi := ph.GlobalSpan()
		for _, c := range ph.Chares {
			k := off[c] + cnt[c]
			ar.spanPhase[k] = int32(i)
			ar.spanLo[k] = lo
			ar.spanHi[k] = hi
			cnt[c]++
		}
	}
	for c := 0; c < nc; c++ {
		lo, hi := off[c], off[c+1]
		if hi-lo < 2 {
			continue
		}
		// Sweep by span start: a collision exists iff a span begins before
		// the previous maximum end.
		ord := ar.spanOrd[:0]
		for k := lo; k < hi; k++ {
			ord = append(ord, k)
		}
		slices.SortFunc(ord, func(x, y int32) int {
			if ar.spanLo[x] != ar.spanLo[y] {
				return int(ar.spanLo[x]) - int(ar.spanLo[y])
			}
			return int(ar.spanPhase[x]) - int(ar.spanPhase[y])
		})
		ar.spanOrd = ord
		maxIdx := ord[0]
		for i := 1; i < len(ord); i++ {
			a, b := maxIdx, ord[i]
			if ar.spanLo[b] > ar.spanHi[a] {
				if ar.spanHi[b] > ar.spanHi[a] {
					maxIdx = b
				}
				continue
			}
			// Colliding spans imply the phases are unordered.
			first, second := ar.spanPhase[a], ar.spanPhase[b]
			if phaseStartTime(s, second) < phaseStartTime(s, first) {
				first, second = second, first
			}
			s.DAG.AddEdge(first, second)
			return true
		}
	}
	return false
}

// phaseStartTime returns the earliest event time of a phase.
func phaseStartTime(s *Structure, p int32) trace.Time {
	best := trace.Time(1<<62 - 1)
	for _, e := range s.Phases[p].Events {
		if t := s.Trace.Events[e].Time; t < best {
			best = t
		}
	}
	return best
}

// stitchChareTimelines builds each chare's global event timeline. Within a
// phase, the per-chare step-assignment pop order IS the chare's timeline and
// per-chare local steps strictly increase along it; across phases, timelines
// concatenate in phase order (offset, then leap, then ID). Both orders are
// recoverable after the fact: walking phases in that rank order and each
// phase's Events in its (LocalStep, Chare, ID) sort order visits every
// chare's events in exactly timeline order, so one counting pass fills all
// timelines into a single flat buffer.
func stitchChareTimelines(s *Structure) {
	nc := len(s.chareEvents)
	order := make([]int32, len(s.Phases))
	for i := range order {
		order[i] = int32(i)
	}
	slices.SortFunc(order, func(x, y int32) int {
		px, py := &s.Phases[x], &s.Phases[y]
		if px.Offset != py.Offset {
			return int(px.Offset) - int(py.Offset)
		}
		if px.Leap != py.Leap {
			return int(px.Leap) - int(py.Leap)
		}
		return int(x) - int(y)
	})
	off := make([]int32, nc+1)
	for e := range s.PhaseOf {
		if s.PhaseOf[e] >= 0 {
			off[s.Trace.Events[e].Chare+1]++
		}
	}
	for c := 0; c < nc; c++ {
		off[c+1] += off[c]
	}
	buf := make([]trace.EventID, off[nc])
	cur := make([]int32, nc)
	for _, pi := range order {
		for _, e := range s.Phases[pi].Events {
			c := s.Trace.Events[e].Chare
			buf[off[c]+cur[c]] = e
			cur[c]++
		}
	}
	for c := 0; c < nc; c++ {
		if lo, hi := off[c], off[c]+cur[c]; lo < hi {
			s.chareEvents[c] = buf[lo:hi:hi]
		}
	}
}
