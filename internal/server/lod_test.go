package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"charmtrace/internal/apps/jacobi"
	"charmtrace/internal/apps/mergetree"
	"charmtrace/internal/lod"
	"charmtrace/internal/tracefile"
)

func postLod(t *testing.T, ts *httptest.Server, digest, query, spec string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/traces/"+digest+"/lod"+query, "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

// TestLodFig10PayloadScale is the subsystem's acceptance test, on the
// paper's Fig. 10 workload at full scale (1,024-process merge tree): a
// resolution=64 LOD response is O(buckets × clusters) — under 1% of the
// byte size of the O(events) /steps payload — and repeat queries serve the
// cached pyramid byte-identically from the memory layer.
func TestLodFig10PayloadScale(t *testing.T) {
	var buf bytes.Buffer
	if err := tracefile.WriteBinary(&buf, mergetree.MustTrace(mergetree.DefaultConfig())); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Parallelism: 4})
	digest := upload(t, ts, buf.Bytes())

	full := mustGet(t, ts, "/v1/traces/"+digest+"/steps?preset=mp")
	lodPath := "/v1/traces/" + digest + "/lod?preset=mp&resolution=64"
	small := mustGet(t, ts, lodPath)
	if 100*len(small) >= len(full) {
		t.Fatalf("resolution=64 LOD is %d bytes, /steps is %d — want < 1%%", len(small), len(full))
	}

	var out lodResponse
	if err := json.Unmarshal(small, &out); err != nil {
		t.Fatal(err)
	}
	if out.NumBuckets < 1 || out.NumBuckets > 64 {
		t.Fatalf("num_buckets = %d, want 1..64", out.NumBuckets)
	}
	if len(out.Rows.Label) == 0 {
		t.Fatal("no cluster rows in the LOD response")
	}

	// Repeat query: served from the resident pyramid, byte-identical.
	resp := rawGet(t, ts, lodPath, nil)
	again, _ := io.ReadAll(resp.Body)
	if !bytes.Equal(again, small) {
		t.Fatal("cached LOD response differs from the cold one")
	}
	if cl := resp.Header.Get("X-Charmd-Cache"); cl != "mem" {
		t.Errorf("repeat LOD query served from %q, want mem", cl)
	}
}

// TestLodValidation pins the 400 contract: invalid parameters and specs
// name the offending field, and unknown digests are 404.
func TestLodValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	digest := upload(t, ts, encodedJacobi(t, 0))
	base := "/v1/traces/" + digest + "/lod"

	for _, tc := range []struct {
		query, field string
	}{
		{"?resolution=banana", "resolution"},
		{"?resolution=-3", "resolution"},
		{"?steps=9..2", "steps.to"},
		{"?steps=x", "steps"},
		{"?max_rows=many", "max_rows"},
		{"?resolution=8&render=true", "render"},
		{"?edges=maybe", "edges"},
	} {
		code, body := get(t, ts, base+tc.query)
		if code != http.StatusBadRequest {
			t.Fatalf("GET %s: status %d, want 400 (%s)", tc.query, code, body)
		}
		var e struct {
			Field string `json:"field"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Field != tc.field {
			t.Errorf("GET %s: field %q, want %q (%s)", tc.query, e.Field, tc.field, body)
		}
	}

	// POST: unknown spec fields are rejected, not silently defaulted.
	if code, body := postLod(t, ts, digest, "", `{"resolutoin": 8}`); code != http.StatusBadRequest {
		t.Fatalf("misspelled spec field: status %d (%s)", code, body)
	}
	if code, body := postLod(t, ts, digest, "", `{"resolution": 8, "render": true}`); code != http.StatusBadRequest {
		t.Fatalf("render at non-native resolution: status %d (%s)", code, body)
	}

	if code, _ := get(t, ts, "/v1/traces/"+strings.Repeat("0", 64)+"/lod"); code != http.StatusNotFound {
		t.Fatalf("unknown digest: status %d, want 404", code)
	}
}

// TestLodGetPostParity: the GET parameter form and the POST spec form
// produce byte-identical bodies for equivalent requests.
func TestLodGetPostParity(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	digest := upload(t, ts, encodedJacobi(t, 0))

	viaGet := mustGet(t, ts, "/v1/traces/"+digest+"/lod?resolution=8&max_rows=4&max_edges=10&steps=0..40")
	code, viaPost := postLod(t, ts, digest, "",
		`{"resolution": 8, "max_rows": 4, "max_edges": 10, "steps": {"from": 0, "to": 40}}`)
	if code != http.StatusOK {
		t.Fatalf("POST status %d: %s", code, viaPost)
	}
	if !bytes.Equal(viaGet, viaPost) {
		t.Fatalf("GET and POST forms differ:\n%s\n----\n%s", viaGet, viaPost)
	}
}

// TestLodETagRevalidation: LOD GETs carry the standard strong ETag and
// honor If-None-Match; the response-shaping parameters feed the tag.
func TestLodETagRevalidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	digest := upload(t, ts, encodedJacobi(t, 0))
	path := "/v1/traces/" + digest + "/lod?resolution=8"

	resp := rawGet(t, ts, path, nil)
	io.Copy(io.Discard, resp.Body)
	etag := resp.Header.Get("ETag")
	if !strings.HasPrefix(etag, `"`) {
		t.Fatalf("weak or missing ETag %q", etag)
	}
	resp304 := rawGet(t, ts, path, map[string]string{"If-None-Match": etag})
	body, _ := io.ReadAll(resp304.Body)
	if resp304.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("revalidation: status %d, body %d bytes", resp304.StatusCode, len(body))
	}
	other := rawGet(t, ts, "/v1/traces/"+digest+"/lod?resolution=16", nil)
	io.Copy(io.Discard, other.Body)
	if other.Header.Get("ETag") == etag {
		t.Error("resolution=16 shares the ETag of resolution=8")
	}
}

// TestLodDiffMode drives the structdiff overlay end to end: a run against
// a perturbed sibling reports diverged chares bucketed over the window,
// a self-diff is equivalent, and incomparable or unknown counterparts map
// to 400/404.
func TestLodDiffMode(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	dA := upload(t, ts, encodedJacobi(t, 0))

	cfg := jacobi.DefaultConfig()
	cfg.SlowChare = 3
	cfg.Iterations++
	var buf bytes.Buffer
	if err := tracefile.WriteBinary(&buf, jacobi.MustTrace(cfg)); err != nil {
		t.Fatal(err)
	}
	dB := upload(t, ts, buf.Bytes())

	var out lodResponse
	if err := json.Unmarshal(mustGet(t, ts, "/v1/traces/"+dA+"/lod?resolution=8&diff="+dB), &out); err != nil {
		t.Fatal(err)
	}
	if out.Diff == nil {
		t.Fatal("diff parameter produced no overlay")
	}
	if out.Diff.Equivalent || out.Diff.Diverged == 0 {
		t.Fatalf("perturbed sibling reported equivalent (diverged=%d)", out.Diff.Diverged)
	}

	if err := json.Unmarshal(mustGet(t, ts, "/v1/traces/"+dA+"/lod?diff="+dA), &out); err != nil {
		t.Fatal(err)
	}
	if out.Diff == nil || !out.Diff.Equivalent {
		t.Fatal("self-diff is not equivalent")
	}

	if code, _ := get(t, ts, "/v1/traces/"+dA+"/lod?diff="+strings.Repeat("0", 64)); code != http.StatusNotFound {
		t.Fatalf("diff against unknown digest: status %d, want 404", code)
	}

	// A counterpart with a different chare population is a client error.
	var mt bytes.Buffer
	cfgMT := mergetree.DefaultConfig()
	cfgMT.Procs = 64
	if err := tracefile.WriteBinary(&mt, mergetree.MustTrace(cfgMT)); err != nil {
		t.Fatal(err)
	}
	dMT := upload(t, ts, mt.Bytes())
	if code, _ := get(t, ts, "/v1/traces/"+dA+"/lod?diff="+dMT); code != http.StatusBadRequest {
		t.Fatalf("diff across chare populations: status %d, want 400", code)
	}
}

// TestLodListSummaries pins the list-enrichment satellite: once an
// extraction has cached a structure, GET /v1/traces reports the trace's
// phase/step/event counts from the summary tier without decoding anything.
func TestLodListSummaries(t *testing.T) {
	_, ts := newTestServer(t, Config{DataDir: t.TempDir()})
	enriched := upload(t, ts, encodedJacobi(t, 0))
	bare := upload(t, ts, encodedJacobi(t, 7))
	mustGet(t, ts, "/v1/traces/"+enriched+"/lod?resolution=8")

	var list struct {
		Traces []listEntry `json:"traces"`
	}
	if err := json.Unmarshal(mustGet(t, ts, "/v1/traces"), &list); err != nil {
		t.Fatal(err)
	}
	byDigest := map[string]listEntry{}
	for _, e := range list.Traces {
		byDigest[e.Digest] = e
	}
	got, ok := byDigest[enriched]
	if !ok {
		t.Fatalf("uploaded trace %s missing from list", enriched)
	}
	if got.NumPhases == nil || got.MaxStep == nil || got.Events == nil {
		t.Fatalf("extracted trace lacks summary fields: %+v", got)
	}
	if *got.NumPhases < 1 || *got.MaxStep < 0 || *got.Events < 1 {
		t.Fatalf("implausible summary: %+v", got)
	}
	if b := byDigest[bare]; b.NumPhases != nil {
		t.Fatalf("never-extracted trace carries summary fields: %+v", b)
	}
}

// TestLodNativeMatchesSteps: at resolution=native over the full window the
// LOD base level reports exactly one bucket per step with the same maximum
// step and phase count the /steps response advertises.
func TestLodNativeMatchesSteps(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	digest := upload(t, ts, encodedJacobi(t, 0))

	var steps struct {
		MaxStep int32 `json:"max_step"`
	}
	if err := json.Unmarshal(mustGet(t, ts, "/v1/traces/"+digest+"/steps"), &steps); err != nil {
		t.Fatal(err)
	}
	var structure struct {
		NumPhases int `json:"num_phases"`
	}
	if err := json.Unmarshal(mustGet(t, ts, "/v1/traces/"+digest+"/structure"), &structure); err != nil {
		t.Fatal(err)
	}
	var out lodResponse
	if err := json.Unmarshal(mustGet(t, ts, "/v1/traces/"+digest+"/lod"), &out); err != nil {
		t.Fatal(err)
	}
	if out.Resolution != lod.Native || out.BucketWidth != 1 {
		t.Fatalf("default request is not native: %+v", out.Result)
	}
	if out.MaxStep != steps.MaxStep || out.NumPhases != structure.NumPhases {
		t.Fatalf("lod (max_step=%d phases=%d) disagrees with /steps+/structure (max_step=%d phases=%d)",
			out.MaxStep, out.NumPhases, steps.MaxStep, structure.NumPhases)
	}
	if out.NumBuckets != steps.MaxStep+1 {
		t.Fatalf("native buckets = %d, want %d", out.NumBuckets, steps.MaxStep+1)
	}
}
