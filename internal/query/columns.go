package query

// columnsFor returns the set of column names rows of this spec carry,
// used to validate Fields projections with a helpful message.
func columnsFor(s *Spec) map[string]struct{} {
	cols := make(map[string]struct{})
	add := func(names ...string) {
		for _, n := range names {
			cols[n] = struct{}{}
		}
	}
	switch s.Select {
	case SelectStructure:
		add("id", "runtime", "leap", "offset", "max_local_step",
			"first_step", "last_step", "chares", "events")
	case SelectSteps:
		add("event", "chare", "chare_name", "kind", "phase",
			"local_step", "step", "pe", "time")
	case SelectMetrics:
		if s.GroupBy == "" {
			add("event", "chare", "phase", "step")
			add(metricNames[:]...)
			break
		}
		add(s.GroupBy)
		if s.GroupBy == GroupByChare {
			add("chare_name")
		}
		for _, agg := range s.aggsSelected() {
			if agg == "count" {
				add("count")
				continue
			}
			for _, name := range metricNames {
				add(name + "_" + agg)
			}
		}
	case SelectViz:
		add("label", "representative", "members", "runtime", "timeline")
	}
	return cols
}
