package cluster

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"charmtrace/internal/telemetry"
	"charmtrace/internal/tracefile"
)

// Gateway defaults.
const (
	DefaultReplication    = 2
	DefaultMaxUploadBytes = 256 << 20
	DefaultMaxEntryBytes  = 64 << 20
	DefaultHedgeMin       = 10 * time.Millisecond
	DefaultHedgeMax       = 2 * time.Second
	// hedgeWarmup is how many proxied requests the adaptive hedge delay
	// wants before trusting its latency histogram; below it the delay stays
	// at HedgeMax (hedge late rather than double every request while cold).
	hedgeWarmup = 20
)

// GatewayConfig configures a Gateway.
type GatewayConfig struct {
	// Members is the cluster the gateway fronts.
	Members []Member
	// Replication is how many ring successors hold each trace and its
	// results (R). 0 = DefaultReplication; clamped to len(Members).
	Replication int
	// VirtualNodes tunes the ring (0 = DefaultVirtualNodes). Must match the
	// nodes' peer clients.
	VirtualNodes int
	// HedgeAfter, when positive, fixes the hedge delay. Zero selects the
	// adaptive delay: the upper bound of the proxy-latency histogram bucket
	// holding the 95th percentile, clamped to [HedgeMin, HedgeMax].
	HedgeAfter time.Duration
	// HedgeMin/HedgeMax clamp the adaptive delay (0 = defaults). HedgeMax
	// < 0 disables hedging entirely.
	HedgeMin, HedgeMax time.Duration
	// MaxUploadBytes bounds one trace upload (0 = 256 MiB). Uploads are
	// buffered in the gateway to compute the routing digest before any node
	// sees a byte.
	MaxUploadBytes int64
	// MaxEntryBytes bounds one replicated result entry (0 = 64 MiB).
	MaxEntryBytes int64
	// ProbeInterval is the health-probe period (0 = DefaultProbeInterval).
	ProbeInterval time.Duration
	// Client is the HTTP client used for proxying (nil = a private one with
	// no global timeout; proxied requests are bounded by their inbound
	// request contexts).
	Client *http.Client
	// Metrics receives the gateway's counters (nil = a private registry).
	Metrics *telemetry.Registry
	// AccessLog receives one structured line per completed request with
	// hop="gateway" (nil disables).
	AccessLog *slog.Logger
}

// Gateway is the cluster front end: an http.Handler that consistent-hash
// routes the charmd API across the member nodes, replicates uploads and
// extraction results to R ring successors, fails over on dead nodes, and
// hedges slow idempotent reads. Create with NewGateway, mount anywhere,
// and call Close on shutdown.
type Gateway struct {
	cfg    GatewayConfig
	ring   *Ring
	health *Health
	client *http.Client
	reg    *telemetry.Registry
	mux    *http.ServeMux

	requests      *telemetry.Counter   // gateway.requests
	uploads       *telemetry.Counter   // gateway.uploads
	failovers     *telemetry.Counter   // gateway.failovers
	hedgeFired    *telemetry.Counter   // gateway.hedge_fired
	hedgeWon      *telemetry.Counter   // gateway.hedge_won
	hedgeCanceled *telemetry.Counter   // gateway.hedge_cancelled
	peerFillHits  *telemetry.Counter   // gateway.peer_fill_hits (node answered from a peer's entry)
	peerFillMiss  *telemetry.Counter   // gateway.peer_fill_misses (cluster-wide miss: an extraction ran)
	replicaPushes *telemetry.Counter   // gateway.replica_pushes (result entries pushed to successors)
	replicaErrors *telemetry.Counter   // gateway.replica_errors
	traceReplicas *telemetry.Counter   // gateway.trace_replicas (upload fan-out copies)
	exhausted     *telemetry.Counter   // gateway.exhausted (every candidate failed -> 502)
	proxyMS       *telemetry.Histogram // gateway.proxy_ms

	probeCancel context.CancelFunc
	probeDone   chan struct{}
	repWG       sync.WaitGroup // in-flight async replications (Quiesce/Close wait)
}

// NewGateway builds the gateway and starts its health prober.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	ring, err := NewRing(cfg.Members, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	if cfg.Replication <= 0 {
		cfg.Replication = DefaultReplication
	}
	if cfg.Replication > len(cfg.Members) {
		cfg.Replication = len(cfg.Members)
	}
	if cfg.MaxUploadBytes <= 0 {
		cfg.MaxUploadBytes = DefaultMaxUploadBytes
	}
	if cfg.MaxEntryBytes <= 0 {
		cfg.MaxEntryBytes = DefaultMaxEntryBytes
	}
	if cfg.HedgeMin <= 0 {
		cfg.HedgeMin = DefaultHedgeMin
	}
	if cfg.HedgeMax == 0 {
		cfg.HedgeMax = DefaultHedgeMax
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	g := &Gateway{
		cfg:           cfg,
		ring:          ring,
		health:        NewHealth(cfg.Members, client, reg),
		client:        client,
		reg:           reg,
		requests:      reg.Counter("gateway.requests"),
		uploads:       reg.Counter("gateway.uploads"),
		failovers:     reg.Counter("gateway.failovers"),
		hedgeFired:    reg.Counter("gateway.hedge_fired"),
		hedgeWon:      reg.Counter("gateway.hedge_won"),
		hedgeCanceled: reg.Counter("gateway.hedge_cancelled"),
		peerFillHits:  reg.Counter("gateway.peer_fill_hits"),
		peerFillMiss:  reg.Counter("gateway.peer_fill_misses"),
		replicaPushes: reg.Counter("gateway.replica_pushes"),
		replicaErrors: reg.Counter("gateway.replica_errors"),
		traceReplicas: reg.Counter("gateway.trace_replicas"),
		exhausted:     reg.Counter("gateway.exhausted"),
		proxyMS:       reg.Histogram("gateway.proxy_ms"),
		probeDone:     make(chan struct{}),
	}
	g.routes()
	ctx, cancel := context.WithCancel(context.Background())
	g.probeCancel = cancel
	go func() {
		defer close(g.probeDone)
		g.health.Run(ctx, cfg.ProbeInterval)
	}()
	return g, nil
}

// Registry returns the gateway's metrics registry.
func (g *Gateway) Registry() *telemetry.Registry { return g.reg }

// Health returns the gateway's member-liveness tracker.
func (g *Gateway) Health() *Health { return g.health }

// Quiesce blocks until every in-flight async replication has finished —
// the E2E harness's way of asserting on replica state without sleeping.
func (g *Gateway) Quiesce() { g.repWG.Wait() }

// Close stops the health prober and waits for async replication to drain.
func (g *Gateway) Close() {
	g.probeCancel()
	<-g.probeDone
	g.repWG.Wait()
}

// routes mounts the gateway endpoints.
func (g *Gateway) routes() {
	g.mux = http.NewServeMux()
	handle := func(pattern, route string, h func(w http.ResponseWriter, r *http.Request, route string)) {
		g.mux.Handle(pattern, g.instrument(route, h))
	}
	handle("POST /v1/traces", "upload", g.handleUpload)
	handle("GET /v1/traces", "list", g.handleList)
	handle("GET /v1/traces/{digest}", "trace", g.handleDigestRead)
	handle("GET /v1/traces/{digest}/structure", "structure", g.handleDigestRead)
	handle("GET /v1/traces/{digest}/steps", "steps", g.handleDigestRead)
	handle("GET /v1/traces/{digest}/metrics", "metrics", g.handleDigestRead)
	handle("POST /v1/traces/{digest}/query", "query", g.handleQuery)
	handle("GET /v1/traces/{digest}/lod", "lod", g.handleDigestRead)
	handle("POST /v1/traces/{digest}/lod", "lod_post", g.handleQuery)
	handle("GET /v1/structdiff", "structdiff", g.handleStructDiff)
	handle("GET /metrics", "prom", g.handleProm)
	handle("GET /cluster", "cluster", g.handleCluster)
	handle("GET /nodes/{node}/{rest...}", "nodes", g.handleNodePassthrough)
	handle("GET /healthz", "healthz", func(w http.ResponseWriter, r *http.Request, _ string) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	handle("GET /readyz", "readyz", func(w http.ResponseWriter, r *http.Request, _ string) {
		w.Header().Set("Content-Type", "application/json")
		if g.health.AliveCount() == 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"status":"no members alive"}`)
			return
		}
		fmt.Fprintln(w, `{"status":"ready"}`)
	})
}

// ServeHTTP dispatches to the mounted routes.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.mux.ServeHTTP(w, r) }

// instrument wraps a route with the request counter, per-route counter,
// status tracking, request-id minting and the hop="gateway" access log.
func (g *Gateway) instrument(route string, h func(w http.ResponseWriter, r *http.Request, route string)) http.Handler {
	routed := g.reg.Counter("gateway.route." + route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		g.requests.Add(1)
		routed.Add(1)
		reqID := gatewayRequestID(r)
		w.Header().Set("X-Request-ID", reqID)
		r = r.WithContext(telemetry.WithRequestID(r.Context(), reqID))
		sw := &gwStatusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(sw, r, route)
		elapsed := time.Since(start)
		g.reg.Counter(fmt.Sprintf("gateway.status.%dxx", sw.code/100)).Add(1)
		g.logAccess(r, route, reqID, sw, elapsed)
	})
}

// gwStatusWriter records the proxied status and byte count.
type gwStatusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
	wrote bool
	node  string // which member answered, for the access log
}

func (w *gwStatusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *gwStatusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// gatewayRequestID honors a well-formed inbound X-Request-ID and mints one
// otherwise, mirroring charmd's contract so a chain client → gateway →
// node → peer logs one id at every hop.
func gatewayRequestID(r *http.Request) string {
	id := r.Header.Get("X-Request-ID")
	if id != "" && len(id) <= 128 {
		ok := true
		for i := 0; i < len(id); i++ {
			if id[i] < 0x21 || id[i] > 0x7e {
				ok = false
				break
			}
		}
		if ok {
			return id
		}
	}
	var b [8]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

func (g *Gateway) logAccess(r *http.Request, route, reqID string, sw *gwStatusWriter, elapsed time.Duration) {
	log := g.cfg.AccessLog
	if log == nil {
		return
	}
	attrs := []slog.Attr{
		slog.String("id", reqID),
		slog.String("hop", "gateway"),
		slog.String("route", route),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
	}
	if sw.node != "" {
		attrs = append(attrs, slog.String("node", sw.node))
	}
	attrs = append(attrs,
		slog.Int("status", sw.code),
		slog.Float64("latency_ms", float64(elapsed.Nanoseconds())/1e6),
		slog.Int64("bytes", sw.bytes),
	)
	level := slog.LevelInfo
	switch {
	case sw.code >= 500:
		level = slog.LevelError
	case sw.code >= 400:
		level = slog.LevelWarn
	}
	log.LogAttrs(context.Background(), level, "request", attrs...)
}

// gwError writes a gateway-originated JSON error.
func gwError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// candidates returns the preference-ordered members for a routing key: the
// key's R owners first (healthy before dead within the replica set, ring
// order preserved otherwise), then the remaining ring successors as a last
// resort — a read can be served by any node because nodes pull missing
// traces from their peers.
func (g *Gateway) candidates(key string) []Member {
	succ := g.ring.Successors(key, g.ring.Len())
	owners := succ[:min(g.cfg.Replication, len(succ))]
	rest := succ[len(owners):]
	out := make([]Member, 0, len(succ))
	for _, m := range owners {
		if g.health.Alive(m.Name) {
			out = append(out, m)
		}
	}
	for _, m := range owners {
		if !g.health.Alive(m.Name) {
			out = append(out, m)
		}
	}
	for _, m := range rest {
		if g.health.Alive(m.Name) {
			out = append(out, m)
		}
	}
	return out
}

// hedgeDelay picks how long the primary read gets before a hedge fires:
// the configured fixed delay, or the latency histogram's ~p95 bucket bound
// clamped to [HedgeMin, HedgeMax]. With a cold histogram it stays at
// HedgeMax — hedging is a tail-latency rescue, not a default second
// request.
func (g *Gateway) hedgeDelay() time.Duration {
	if g.cfg.HedgeAfter > 0 {
		return g.cfg.HedgeAfter
	}
	snap := g.reg.Snapshot().Histograms["gateway.proxy_ms"]
	if snap.Count < hedgeWarmup {
		return g.cfg.HedgeMax
	}
	target := (snap.Count*95 + 99) / 100
	var cum int64
	bound := snap.Max
	for _, b := range snap.Buckets {
		cum += b.Count
		if cum >= target {
			bound = b.UpperBound
			break
		}
	}
	d := time.Duration(bound * float64(time.Millisecond))
	if d < g.cfg.HedgeMin {
		d = g.cfg.HedgeMin
	}
	if d > g.cfg.HedgeMax {
		d = g.cfg.HedgeMax
	}
	return d
}

// attemptResult is one proxied attempt's outcome.
type attemptResult struct {
	member Member
	resp   *http.Response
	err    error
	cancel context.CancelFunc
	hedged bool
}

// sendTo launches one proxied attempt on its own cancellable context and
// delivers the outcome on results.
func (g *Gateway) sendTo(r *http.Request, m Member, body []byte, hedged bool, results chan<- *attemptResult) context.CancelFunc {
	actx, cancel := context.WithCancel(r.Context())
	go func() {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(actx, r.Method, m.URL+r.URL.RequestURI(), rd)
		if err != nil {
			results <- &attemptResult{member: m, err: err, cancel: cancel, hedged: hedged}
			return
		}
		copyProxyHeaders(req.Header, r.Header)
		req.Header.Set("X-Request-ID", telemetry.RequestID(r.Context()))
		req.Header.Set("X-Charmd-Hop", "gateway")
		resp, err := g.client.Do(req)
		results <- &attemptResult{member: m, resp: resp, err: err, cancel: cancel, hedged: hedged}
	}()
	return cancel
}

// copyProxyHeaders forwards end-to-end request headers, dropping the
// hop-by-hop set.
func copyProxyHeaders(dst, src http.Header) {
	for k, vs := range src {
		switch http.CanonicalHeaderKey(k) {
		case "Connection", "Keep-Alive", "Te", "Trailer", "Transfer-Encoding", "Upgrade", "Host", "Content-Length":
			continue
		}
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// countNode attributes one answered request to (route, member) — the
// gateway.node_requests.<route>.<node> series that /cluster renders as the
// per-member request table, so per-route traffic (LOD included) is
// attributable per node.
func (g *Gateway) countNode(route, node string) {
	g.reg.Counter("gateway.node_requests." + route + "." + node).Add(1)
}

// proxy routes one request across the key's candidates with sequential
// failover (a transport error marks the node dead and tries the next) and,
// for hedgeable requests, one tail-latency hedge: after hedgeDelay with no
// answer, a second identical request races the first; the first usable
// response wins and the loser's context is cancelled. The winner's body
// streams to the client unbuffered. route labels the answering node's
// request counter.
func (g *Gateway) proxy(w http.ResponseWriter, r *http.Request, route, key, digest string, body []byte, hedgeable bool) {
	candidates := g.candidates(key)
	if len(candidates) == 0 {
		g.exhausted.Add(1)
		gwError(w, http.StatusBadGateway, "cluster: no members")
		return
	}
	if g.cfg.HedgeMax < 0 {
		hedgeable = false
	}
	results := make(chan *attemptResult, len(candidates))
	next := 0
	inflight := 0
	launch := func(hedged bool) bool {
		if next >= len(candidates) {
			return false
		}
		g.sendTo(r, candidates[next], body, hedged, results)
		next++
		inflight++
		return true
	}
	start := time.Now()
	launch(false)

	var hedgeC <-chan time.Time
	if hedgeable && len(candidates) > 1 {
		t := time.NewTimer(g.hedgeDelay())
		defer t.Stop()
		hedgeC = t.C
	}

	var winner *attemptResult
	lastErr := "unreachable"
	for winner == nil {
		select {
		case <-hedgeC:
			hedgeC = nil
			if launch(true) {
				g.hedgeFired.Add(1)
			}
		case a := <-results:
			inflight--
			if a.err != nil {
				a.cancel()
				// A cancelled hedge loser is not a failover; a real
				// transport error is, and the member sits out until the
				// prober readmits it.
				if r.Context().Err() == nil && !errors.Is(a.err, context.Canceled) {
					g.health.MarkDead(a.member.Name)
					g.failovers.Add(1)
					lastErr = a.err.Error()
				}
				if inflight == 0 && !launch(a.hedged) {
					g.exhausted.Add(1)
					gwError(w, http.StatusBadGateway, "cluster: all candidates failed: "+lastErr)
					return
				}
				continue
			}
			if a.resp.StatusCode >= 500 {
				// A draining or broken node: fail over without declaring it
				// dead (it answered; the prober owns liveness).
				lastErr = fmt.Sprintf("%s: %s", a.member.Name, a.resp.Status)
				io.Copy(io.Discard, io.LimitReader(a.resp.Body, 4096))
				a.resp.Body.Close()
				a.cancel()
				g.failovers.Add(1)
				if inflight == 0 && !launch(a.hedged) {
					g.exhausted.Add(1)
					gwError(w, http.StatusBadGateway, "cluster: all candidates failed: "+lastErr)
					return
				}
				continue
			}
			winner = a
		case <-r.Context().Done():
			// Client gone; in-flight attempts die with the request context.
			for inflight > 0 {
				a := <-results
				inflight--
				if a.resp != nil {
					a.resp.Body.Close()
				}
				a.cancel()
			}
			return
		}
	}

	// Cancel the losing attempt(s); drain their results off-path so their
	// transports can reuse connections.
	if inflight > 0 {
		g.hedgeCanceled.Add(int64(inflight))
		if winner.hedged {
			g.hedgeWon.Add(1)
		}
		remaining := inflight
		go func() {
			for i := 0; i < remaining; i++ {
				a := <-results
				if a.resp != nil {
					io.Copy(io.Discard, io.LimitReader(a.resp.Body, 4096))
					a.resp.Body.Close()
				}
				a.cancel()
			}
		}()
		// The loser's context must actually be cancelled: every launched
		// attempt shares the request context, so cancel just the ones that
		// lost via their own cancels, delivered through the drain above.
	}

	g.relay(w, r, winner, route, digest)
	g.proxyMS.Observe(float64(time.Since(start).Nanoseconds()) / 1e6)
}

// relay streams the winning response to the client and feeds the cluster
// bookkeeping: peer-fill counters from the node's X-Charmd-Cache header,
// and async result replication when the answer came from a fresh
// extraction (a cluster-wide miss).
func (g *Gateway) relay(w http.ResponseWriter, r *http.Request, a *attemptResult, route, digest string) {
	defer a.cancel()
	defer a.resp.Body.Close()
	if sw, ok := w.(*gwStatusWriter); ok {
		sw.node = a.member.Name
	}
	g.countNode(route, a.member.Name)
	h := w.Header()
	for k, vs := range a.resp.Header {
		switch http.CanonicalHeaderKey(k) {
		case "Connection", "Keep-Alive", "Te", "Trailer", "Transfer-Encoding", "Upgrade":
			continue
		case "X-Request-Id":
			continue // ours is already set and identical
		}
		for _, v := range vs {
			h.Add(k, v)
		}
	}
	outcome := a.resp.Header.Get("X-Charmd-Cache")
	key := a.resp.Header.Get("X-Charmd-Result-Key")
	switch outcome {
	case "peer":
		g.peerFillHits.Add(1)
	case "miss":
		g.peerFillMiss.Add(1)
	}
	if outcome == "miss" && key != "" && digest != "" && g.cfg.Replication > 1 && a.resp.StatusCode < 300 {
		g.replicateResult(digest, key, a.member, telemetry.RequestID(r.Context()))
	}
	w.WriteHeader(a.resp.StatusCode)
	io.Copy(w, a.resp.Body)
}

// replicateResult asynchronously copies the encoded result entry from the
// node that just extracted it to the other members of the trace's replica
// set, so their next request for this key is a disk hit instead of a peer
// round trip or a second extraction.
func (g *Gateway) replicateResult(digest, key string, src Member, reqID string) {
	targets := make([]Member, 0, g.cfg.Replication-1)
	for _, m := range g.ring.Successors(digest, g.cfg.Replication) {
		if m.Name != src.Name && g.health.Alive(m.Name) {
			targets = append(targets, m)
		}
	}
	if len(targets) == 0 {
		return
	}
	g.repWG.Add(1)
	go func() {
		defer g.repWG.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		entry, err := g.fetchEntry(ctx, src, key, reqID)
		if err != nil {
			g.replicaErrors.Add(1)
			return
		}
		for _, m := range targets {
			req, err := http.NewRequestWithContext(ctx, http.MethodPut,
				m.URL+"/v1/internal/results/"+key, bytes.NewReader(entry))
			if err != nil {
				g.replicaErrors.Add(1)
				continue
			}
			req.Header.Set("X-Request-ID", reqID)
			req.Header.Set("X-Charmd-Hop", "gateway")
			req.Header.Set("Content-Type", "application/octet-stream")
			resp, err := g.client.Do(req)
			if err != nil {
				g.replicaErrors.Add(1)
				continue
			}
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if resp.StatusCode/100 == 2 {
				g.replicaPushes.Add(1)
			} else {
				g.replicaErrors.Add(1)
			}
		}
	}()
}

// fetchEntry pulls one encoded entry from a node's internal endpoint.
func (g *Gateway) fetchEntry(ctx context.Context, m Member, key, reqID string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.URL+"/v1/internal/results/"+key, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("X-Request-ID", reqID)
	req.Header.Set("X-Charmd-Hop", "gateway")
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: fetch entry from %s: %s", m.Name, resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, g.cfg.MaxEntryBytes+1))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > g.cfg.MaxEntryBytes {
		return nil, fmt.Errorf("cluster: entry %s exceeds %d bytes", key, g.cfg.MaxEntryBytes)
	}
	return data, nil
}

// handleDigestRead proxies the digest-scoped idempotent reads (trace
// summary, structure, steps, metrics) with failover and hedging.
func (g *Gateway) handleDigestRead(w http.ResponseWriter, r *http.Request, route string) {
	digest := r.PathValue("digest")
	g.proxy(w, r, route, digest, digest, nil, true)
}

// handleQuery proxies the digest-scoped POST analysis requests (query and
// LOD specs alike — the proxied path is the inbound one). The body is
// buffered (bounded) so a failover can resend it; these are read-only but
// POST, so they fail over without hedging.
func (g *Gateway) handleQuery(w http.ResponseWriter, r *http.Request, route string) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 4<<20))
	if err != nil {
		gwError(w, http.StatusRequestEntityTooLarge, err.Error())
		return
	}
	digest := r.PathValue("digest")
	g.proxy(w, r, route, digest, digest, body, false)
}

// handleStructDiff routes by the a-side digest: with R >= 2 and upload
// fan-out both sides are usually resident there, and any node pulls a
// missing trace from its peers before answering.
func (g *Gateway) handleStructDiff(w http.ResponseWriter, r *http.Request, route string) {
	a := r.URL.Query().Get("a")
	if a == "" {
		gwError(w, http.StatusBadRequest, "need a=<digest> and b=<digest>")
		return
	}
	g.proxy(w, r, route, a, "", nil, true)
}

// handleUpload ingests one trace through the gateway: the body is buffered,
// content-addressed, posted to the digest's owner, and fanned out to the
// rest of the replica set asynchronously. The owner's response (including
// its digest — which the gateway independently computed — and summary) is
// relayed verbatim.
func (g *Gateway) handleUpload(w http.ResponseWriter, r *http.Request, route string) {
	g.uploads.Add(1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxUploadBytes))
	if err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			gwError(w, http.StatusRequestEntityTooLarge, err.Error())
			return
		}
		gwError(w, http.StatusBadRequest, err.Error())
		return
	}
	digest := tracefile.DigestBytes(body)
	owners := g.ring.Successors(digest, g.cfg.Replication)
	ordered := make([]Member, 0, len(owners))
	for _, m := range owners {
		if g.health.Alive(m.Name) {
			ordered = append(ordered, m)
		}
	}
	for _, m := range owners {
		if !g.health.Alive(m.Name) {
			ordered = append(ordered, m)
		}
	}
	reqID := telemetry.RequestID(r.Context())
	var winner *http.Response
	var winnerName string
	for _, m := range ordered {
		resp, err := g.postTrace(r.Context(), m, body, reqID, r.Header.Get("Content-Type"))
		if err != nil {
			g.health.MarkDead(m.Name)
			g.failovers.Add(1)
			continue
		}
		if resp.StatusCode >= 500 {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			g.failovers.Add(1)
			continue
		}
		winner = resp
		winnerName = m.Name
		break
	}
	if winner == nil {
		g.exhausted.Add(1)
		gwError(w, http.StatusBadGateway, "cluster: no owner accepted the upload")
		return
	}
	defer winner.Body.Close()
	if sw, ok := w.(*gwStatusWriter); ok {
		sw.node = winnerName
	}
	g.countNode(route, winnerName)
	// Fan the accepted trace out to the rest of the replica set so peer
	// fill and failover find the bytes everywhere they should be.
	if winner.StatusCode < 300 {
		for _, m := range owners {
			if m.Name == winnerName {
				continue
			}
			g.repWG.Add(1)
			go func(m Member) {
				defer g.repWG.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				defer cancel()
				resp, err := g.postTrace(ctx, m, body, reqID, "")
				if err != nil {
					g.replicaErrors.Add(1)
					return
				}
				io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
				resp.Body.Close()
				if resp.StatusCode < 300 {
					g.traceReplicas.Add(1)
				} else {
					g.replicaErrors.Add(1)
				}
			}(m)
		}
	}
	for k, vs := range winner.Header {
		switch http.CanonicalHeaderKey(k) {
		case "Connection", "Keep-Alive", "Te", "Trailer", "Transfer-Encoding", "Upgrade", "X-Request-Id":
			continue
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(winner.StatusCode)
	io.Copy(w, winner.Body)
}

func (g *Gateway) postTrace(ctx context.Context, m Member, body []byte, reqID, contentType string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, m.URL+"/v1/traces", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("X-Request-ID", reqID)
	req.Header.Set("X-Charmd-Hop", "gateway")
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	return g.client.Do(req)
}

// handleList fans GET /v1/traces out to every live member and merges the
// results: the union of all traces, deduplicated by digest, sorted. The
// entry shape mirrors charmd's (bytes plus the summary-tier structure
// fields); when members disagree — only some hold a cached result — the
// merge prefers an entry that carries the structure fields.
func (g *Gateway) handleList(w http.ResponseWriter, r *http.Request, route string) {
	type listEntry struct {
		Digest    string `json:"digest"`
		Bytes     int64  `json:"bytes"`
		NumPhases *int   `json:"num_phases,omitempty"`
		MaxStep   *int32 `json:"max_step,omitempty"`
		Events    *int   `json:"events,omitempty"`
	}
	type listResp struct {
		Traces []listEntry `json:"traces"`
	}
	reqID := telemetry.RequestID(r.Context())
	var mu sync.Mutex
	merged := make(map[string]listEntry)
	var wg sync.WaitGroup
	answered := false
	for _, m := range g.ring.Members() {
		if !g.health.Alive(m.Name) {
			continue
		}
		wg.Add(1)
		go func(m Member) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, m.URL+"/v1/traces", nil)
			if err != nil {
				return
			}
			req.Header.Set("X-Request-ID", reqID)
			req.Header.Set("X-Charmd-Hop", "gateway")
			resp, err := g.client.Do(req)
			if err != nil {
				g.health.MarkDead(m.Name)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return
			}
			var lr listResp
			if json.NewDecoder(resp.Body).Decode(&lr) != nil {
				return
			}
			g.countNode(route, m.Name)
			mu.Lock()
			answered = true
			for _, e := range lr.Traces {
				if old, ok := merged[e.Digest]; !ok || (old.NumPhases == nil && e.NumPhases != nil) {
					merged[e.Digest] = e
				}
			}
			mu.Unlock()
		}(m)
	}
	wg.Wait()
	if !answered {
		g.exhausted.Add(1)
		gwError(w, http.StatusBadGateway, "cluster: no member answered the listing")
		return
	}
	digests := make([]string, 0, len(merged))
	for d := range merged {
		digests = append(digests, d)
	}
	sort.Strings(digests)
	out := listResp{Traces: make([]listEntry, 0, len(digests))}
	for _, d := range digests {
		out.Traces = append(out.Traces, merged[d])
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// handleProm serves the gateway's own metrics with node="gateway", so one
// scrape config covers the whole cluster with distinguishable series.
func (g *Gateway) handleProm(w http.ResponseWriter, r *http.Request, route string) {
	w.Header().Set("Content-Type", telemetry.PromContentType)
	telemetry.WritePrometheusLabels(w, g.reg, map[string]string{"node": "gateway"})
	telemetry.WriteGoRuntimeMetrics(w)
}

// handleCluster describes the cluster: members with liveness, replication
// factor, each member's share of a synthetic keyspace (a quick ring-
// balance sanity check for operators), the gateway's per-route request
// counts, and each member's answered requests broken down by route — the
// table that makes per-route traffic (LOD included) attributable per node.
func (g *Gateway) handleCluster(w http.ResponseWriter, r *http.Request, route string) {
	shares := make(map[string]int, g.ring.Len())
	const probes = 1024
	for i := 0; i < probes; i++ {
		shares[g.ring.Owner(fmt.Sprintf("share-probe-%d", i)).Name]++
	}
	routes := make(map[string]int64)
	byNode := make(map[string]map[string]int64)
	for name, v := range g.reg.Snapshot().Counters {
		if rt, ok := strings.CutPrefix(name, "gateway.route."); ok {
			routes[rt] = v
			continue
		}
		rest, ok := strings.CutPrefix(name, "gateway.node_requests.")
		if !ok {
			continue
		}
		rt, node, ok := strings.Cut(rest, ".")
		if !ok {
			continue
		}
		if byNode[node] == nil {
			byNode[node] = make(map[string]int64)
		}
		byNode[node][rt] += v
	}
	status := g.health.Snapshot()
	type memberJSON struct {
		Name            string           `json:"name"`
		URL             string           `json:"url"`
		Alive           bool             `json:"alive"`
		OwnedShare      float64          `json:"owned_share"`
		Requests        int64            `json:"requests"`
		RequestsByRoute map[string]int64 `json:"requests_by_route,omitempty"`
	}
	out := struct {
		Replication int              `json:"replication"`
		Routes      map[string]int64 `json:"routes"`
		Members     []memberJSON     `json:"members"`
	}{Replication: g.cfg.Replication, Routes: routes}
	for _, ms := range status {
		var total int64
		for _, v := range byNode[ms.Name] {
			total += v
		}
		out.Members = append(out.Members, memberJSON{
			Name: ms.Name, URL: ms.URL, Alive: ms.Alive,
			OwnedShare:      float64(shares[ms.Name]) / probes,
			Requests:        total,
			RequestsByRoute: byNode[ms.Name],
		})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// handleNodePassthrough proxies /nodes/{name}/... to one named member's
// observability surface — debug endpoints, metrics, health — so an
// operator can inspect any node through the gateway without knowing its
// address. Only read-only observability paths pass through.
func (g *Gateway) handleNodePassthrough(w http.ResponseWriter, r *http.Request, route string) {
	name := r.PathValue("node")
	rest := r.PathValue("rest")
	allowed := rest == "metrics" || rest == "healthz" || rest == "readyz" ||
		strings.HasPrefix(rest, "debug/")
	if !allowed {
		gwError(w, http.StatusNotFound, "only /debug/, /metrics, /healthz and /readyz pass through")
		return
	}
	var target *Member
	for _, m := range g.ring.Members() {
		if m.Name == name {
			target = &m
			break
		}
	}
	if target == nil {
		gwError(w, http.StatusNotFound, fmt.Sprintf("unknown node %q", name))
		return
	}
	url := target.URL + "/" + rest
	if q := r.URL.RawQuery; q != "" {
		url += "?" + q
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, url, nil)
	if err != nil {
		gwError(w, http.StatusInternalServerError, err.Error())
		return
	}
	copyProxyHeaders(req.Header, r.Header)
	req.Header.Set("X-Request-ID", telemetry.RequestID(r.Context()))
	req.Header.Set("X-Charmd-Hop", "gateway")
	resp, err := g.client.Do(req)
	if err != nil {
		g.health.MarkDead(name)
		gwError(w, http.StatusBadGateway, err.Error())
		return
	}
	defer resp.Body.Close()
	if sw, ok := w.(*gwStatusWriter); ok {
		sw.node = name
	}
	g.countNode(route, name)
	for k, vs := range resp.Header {
		switch http.CanonicalHeaderKey(k) {
		case "Connection", "Keep-Alive", "Te", "Trailer", "Transfer-Encoding", "Upgrade", "X-Request-Id":
			continue
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}
