package resultcache

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"testing"
	"time"

	"charmtrace/internal/core"
)

// TestDiskReadRefreshesRecency is the regression test for the mtime-LRU
// bug: the disk GC evicts least-recently-modified first, so a read must
// refresh the entry's mtime — otherwise an entry written long ago but read
// constantly (the hottest entry in the store) is the first one evicted,
// while an untouched sibling written later survives.
func TestDiskReadRefreshesRecency(t *testing.T) {
	tr, digest := testTrace(t)
	dir := t.TempDir()
	c, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	optHot := core.DefaultOptions()
	optCold := core.DefaultOptions()
	optCold.Reorder = false
	ctx := context.Background()
	if _, err := c.Get(ctx, digest, tr, optHot); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(ctx, digest, tr, optCold); err != nil {
		t.Fatal(err)
	}
	hot, cold := c.DiskPath(digest, optHot), c.DiskPath(digest, optCold)
	// Backdate both entries, then make the hot one look backdated-but-read:
	// a fresh cache (cold memory) reads it from disk repeatedly.
	old := time.Now().Add(-time.Hour)
	for _, p := range []string{hot, cold} {
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatal(err)
		}
	}
	c2, err := New(Config{Dir: dir, MaxMemEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c2.Get(ctx, digest, tr, optHot); err != nil {
			t.Fatal(err)
		}
	}
	if got := counter(c2.Registry(), "cache.disk_hits"); got != 3 {
		t.Fatalf("disk_hits = %d, want 3", got)
	}
	infoHot, err := os.Stat(hot)
	if err != nil {
		t.Fatal(err)
	}
	infoCold, err := os.Stat(cold)
	if err != nil {
		t.Fatal(err)
	}
	c2.maxDiskBytes = max(infoHot.Size(), infoCold.Size()) // room for one entry
	c2.gcDisk()
	if _, err := os.Stat(hot); err != nil {
		t.Errorf("repeatedly-read entry was evicted: %v", err)
	}
	if _, err := os.Stat(cold); !os.IsNotExist(err) {
		t.Errorf("untouched sibling survived GC (stat err %v)", err)
	}
}

// TestReadSummaryServesPhaseTable: the streaming summary read serves the
// phase table straight from the disk entry, counts as a disk hit, and
// refreshes the entry's recency; mismatched fingerprints and missing
// entries are clean ErrNoEntry fallbacks.
func TestReadSummaryServesPhaseTable(t *testing.T) {
	tr, digest := testTrace(t)
	dir := t.TempDir()
	c, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	s, err := c.Get(context.Background(), digest, tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	key := KeyID(digest, opt.Fingerprint())
	path := c.DiskPath(digest, opt)
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}

	sum, err := c.ReadSummary(key, opt.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Fingerprint != opt.Fingerprint() {
		t.Errorf("summary fingerprint %q, want %q", sum.Fingerprint, opt.Fingerprint())
	}
	if len(sum.Phases) != s.NumPhases() || sum.MaxStep != s.MaxStep() || sum.DAGEdges != s.DAG.NumEdges() {
		t.Errorf("summary (%d phases, max step %d, %d edges) disagrees with structure (%d, %d, %d)",
			len(sum.Phases), sum.MaxStep, sum.DAGEdges, s.NumPhases(), s.MaxStep(), s.DAG.NumEdges())
	}
	if got := counter(c.Registry(), "cache.disk_hits"); got != 1 {
		t.Errorf("disk_hits = %d, want 1", got)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if !info.ModTime().After(old.Add(time.Minute)) {
		t.Errorf("summary read did not refresh mtime (still %v)", info.ModTime())
	}

	if _, err := c.ReadSummary(key, "different-fingerprint"); !errors.Is(err, ErrNoEntry) {
		t.Errorf("stale-fingerprint summary error = %v, want ErrNoEntry", err)
	}
	if got := counter(c.Registry(), "cache.disk_errors"); got != 1 {
		t.Errorf("disk_errors = %d, want 1 after fingerprint mismatch", got)
	}
	missing := "0000000000000000000000000000000000000000000000000000000000000000"
	if _, err := c.ReadSummary(missing, opt.Fingerprint()); !errors.Is(err, ErrNoEntry) {
		t.Errorf("missing-entry summary error = %v, want ErrNoEntry", err)
	}
	if _, err := c.ReadSummary("not-a-key", opt.Fingerprint()); !errors.Is(err, ErrNoEntry) {
		t.Errorf("invalid-key summary error = %v, want ErrNoEntry", err)
	}
}

// TestPeerFillRejectsOversizedEntry: a peer streaming more than
// MaxEntryBytes is a peer-fill miss — the body is abandoned at the limit
// (never buffered whole) and the cache extracts locally.
func TestPeerFillRejectsOversizedEntry(t *testing.T) {
	tr, digest := testTrace(t)
	opt := core.DefaultOptions()
	want, err := core.Extract(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	entry := encodeStructure(t, want)

	c, err := New(Config{
		Dir:           t.TempDir(),
		MaxEntryBytes: int64(len(entry)) - 1, // one byte short of the real entry
		PeerFetch: func(ctx context.Context, d, k string) (io.ReadCloser, error) {
			return io.NopCloser(bytes.NewReader(entry)), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Get(context.Background(), digest, tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeStructure(t, s), entry) {
		t.Fatal("fallback extraction produced different bytes")
	}
	reg := c.Registry()
	if got := counter(reg, "cache.peer_misses"); got != 1 {
		t.Errorf("peer_misses = %d, want 1", got)
	}
	if got := counter(reg, "cache.peer_hits"); got != 0 {
		t.Errorf("peer_hits = %d, want 0", got)
	}
	if got := counter(reg, "cache.misses"); got != 1 {
		t.Errorf("misses = %d, want 1 (must have extracted locally)", got)
	}

	// The same entry under a sufficient limit is accepted.
	c2, err := New(Config{
		Dir:           t.TempDir(),
		MaxEntryBytes: int64(len(entry)),
		PeerFetch: func(ctx context.Context, d, k string) (io.ReadCloser, error) {
			return io.NopCloser(bytes.NewReader(entry)), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Get(context.Background(), digest, tr, opt); err != nil {
		t.Fatal(err)
	}
	if got := counter(c2.Registry(), "cache.peer_hits"); got != 1 {
		t.Errorf("peer_hits = %d, want 1 at the exact limit", got)
	}
}

// TestTouchRacesDiskGC interleaves the read-path mtime refresh (OpenEntry,
// ReadSummary, disk-hit Gets) with concurrent GC sweeps under a tiny
// bound. Run under -race in the tier-1 leg: a touch landing on an entry the
// sweep just unlinked must degrade to a no-op, never corrupt the store or
// fail a read that already has the file open.
func TestTouchRacesDiskGC(t *testing.T) {
	tr, digest := testTrace(t)
	opt := core.DefaultOptions()
	s, err := core.Extract(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	entry := encodeStructure(t, s)
	dir := t.TempDir()
	c, err := New(Config{Dir: dir, MaxDiskBytes: int64(len(entry)) * 2})
	if err != nil {
		t.Fatal(err)
	}
	fp := opt.Fingerprint()
	keys := make([]string, 6)
	for i := range keys {
		keys[i] = KeyID(fmt.Sprintf("%s-%d", digest, i), fp)
	}
	for _, k := range keys {
		if _, err := c.PutEntry(k, bytes.NewReader(entry), 0); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writers keep the store over budget so sweeps always evict.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.PutEntry(keys[i%len(keys)], bytes.NewReader(entry), 0)
		}
	}()
	// Touchers exercise every read-side Chtimes path.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := keys[(i+r)%len(keys)]
				switch i % 2 {
				case 0:
					if rc, _, err := c.OpenEntry(k); err == nil {
						io.Copy(io.Discard, rc)
						rc.Close()
					}
				case 1:
					c.ReadSummary(k, fp)
				}
			}
		}(r)
	}
	deadline := time.After(5 * time.Second)
	for counter(c.Registry(), "cache.disk_evictions") < 20 {
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			t.Fatalf("GC not exercised: %d evictions", counter(c.Registry(), "cache.disk_evictions"))
		default:
			c.gcDisk()
		}
	}
	close(stop)
	wg.Wait()
}
